// Minimal self-contained JSON document model, parser, and writer.
//
// Used by the GraphSON reader/writer (the paper's common data interchange
// format) and by the document-store engine, which serializes every vertex
// and edge as a JSON blob (ArangoDB architecture, paper §3.2).

#ifndef GDBMICRO_UTIL_JSON_H_
#define GDBMICRO_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/util/result.h"

namespace gdbmicro {

/// A JSON value: null, bool, number (int64 or double), string, array, or
/// object. Object member order is preserved (vector of pairs) so that
/// serialization is deterministic.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}            // NOLINT
  Json(bool b) : value_(b) {}                          // NOLINT
  Json(int64_t i) : value_(i) {}                       // NOLINT
  Json(int i) : value_(static_cast<int64_t>(i)) {}     // NOLINT
  Json(uint64_t u) : value_(static_cast<int64_t>(u)) {}  // NOLINT
  Json(double d) : value_(d) {}                        // NOLINT
  Json(std::string s) : value_(std::move(s)) {}        // NOLINT
  Json(const char* s) : value_(std::string(s)) {}      // NOLINT
  Json(Array a) : value_(std::move(a)) {}              // NOLINT
  Json(Object o) : value_(std::move(o)) {}             // NOLINT

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool bool_value() const { return std::get<bool>(value_); }
  int64_t int_value() const {
    return is_double() ? static_cast<int64_t>(std::get<double>(value_))
                       : std::get<int64_t>(value_);
  }
  double double_value() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(value_))
                    : std::get<double>(value_);
  }
  const std::string& string_value() const { return std::get<std::string>(value_); }

  const Array& array() const { return std::get<Array>(value_); }
  Array& array() { return std::get<Array>(value_); }
  const Object& object() const { return std::get<Object>(value_); }
  Object& object() { return std::get<Object>(value_); }

  /// Object member lookup; returns nullptr if absent or not an object.
  const Json* Find(std::string_view key) const;

  /// Sets (or replaces) an object member. Value must be an object.
  void Set(std::string key, Json value);

  /// Appends to an array. Value must be an array.
  void Append(Json value) { array().push_back(std::move(value)); }

  /// Serializes compactly (no whitespace).
  std::string Dump() const;

  /// Appends the compact serialization to *out without an intermediate
  /// string (streaming writers, e.g. the document engine's bulk loader).
  void DumpAppend(std::string* out) const;

  /// Serializes with 2-space indentation.
  std::string Pretty() const;

  /// Parses a complete JSON document. Trailing garbage is an error.
  static Result<Json> Parse(std::string_view text);

  bool operator==(const Json& other) const { return value_ == other.value_; }

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      value_;
};

/// Appends `s` as a JSON string literal (quotes + escaping) to *out —
/// byte-identical to how Json::Dump renders the same string. Lets
/// streaming writers emit documents without building a Json tree.
void AppendEscapedJsonString(std::string_view s, std::string* out);

}  // namespace gdbmicro

#endif  // GDBMICRO_UTIL_JSON_H_
