// Result<T>: value-or-Status, the return type of fallible producers.

#ifndef GDBMICRO_UTIL_RESULT_H_
#define GDBMICRO_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace gdbmicro {

/// Holds either a T or an error Status. Never holds an OK Status without a
/// value. Accessing value() on an error result is a programming error
/// (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this result is an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace gdbmicro

#endif  // GDBMICRO_UTIL_RESULT_H_
