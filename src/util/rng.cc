#include "src/util/rng.h"

#include <numeric>

namespace gdbmicro {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.empty() ? 1 : weights.size();
  prob_.assign(n, 1.0);
  alias_.assign(n, 0);
  if (weights.empty()) return;

  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) total = 1.0;

  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  while (!large.empty()) {
    prob_[large.back()] = 1.0;
    large.pop_back();
  }
  while (!small.empty()) {
    prob_[small.back()] = 1.0;
    small.pop_back();
  }
}

uint64_t AliasSampler::Sample(Rng& rng) const {
  uint64_t i = rng.Uniform(prob_.size());
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace gdbmicro
