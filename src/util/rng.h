// Deterministic random number generation and the skewed samplers the
// dataset generators need (uniform, Zipf, discrete power-law degree
// sampling). Determinism matters: the paper's methodology requires the
// "same random selection across systems", which we get by seeding every
// generator and workload picker from the dataset seed.

#ifndef GDBMICRO_UTIL_RNG_H_
#define GDBMICRO_UTIL_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace gdbmicro {

/// splitmix64: fast, high-quality 64-bit PRNG used for seeding and as the
/// core generator. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next 64 random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    // Rejection-free multiply-shift; bias is negligible for n << 2^64.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Derives an independent child generator; used to give each dataset
  /// component its own stream so adding one component does not perturb
  /// the others.
  Rng Fork(uint64_t stream_id) {
    return Rng(Next() ^ (stream_id * 0xd1342543de82ef95ULL + 1));
  }

 private:
  uint64_t state_;
};

/// Zipf-distributed sampler over {0, ..., n-1} with exponent s, using the
/// rejection-inversion method of Hörmann & Derflinger. O(1) per sample
/// after O(1) setup; suitable for the power-law hub structure of the
/// Freebase/MiCo-like generators.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
    assert(n > 0);
    h_x1_ = H(1.5) - 1.0;
    h_n_ = H(static_cast<double>(n_) + 0.5);
    dist_range_ = h_n_ - h_x1_;
  }

  uint64_t Sample(Rng& rng) {
    if (n_ == 1) return 0;
    while (true) {
      double u = h_x1_ + rng.NextDouble() * dist_range_;
      double x = HInv(u);
      uint64_t k = static_cast<uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      double diff = static_cast<double>(k) - x;
      if (diff > 0.5 || diff < -0.5) continue;  // numeric safety
      if (u >= H(static_cast<double>(k) + 0.5) - Pow(static_cast<double>(k))) {
        return k - 1;
      }
    }
  }

 private:
  double Pow(double x) const { return std::exp(-s_ * std::log(x)); }
  // H(x) = integral of x^-s
  double H(double x) const {
    if (s_ == 1.0) return std::log(x);
    return (std::exp((1.0 - s_) * std::log(x)) - 1.0) / (1.0 - s_);
  }
  double HInv(double u) const {
    if (s_ == 1.0) return std::exp(u);
    return std::exp(std::log(1.0 + u * (1.0 - s_)) / (1.0 - s_));
  }

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double dist_range_;
};

/// Weighted discrete sampler (alias method). O(n) setup, O(1) sampling.
class AliasSampler {
 public:
  explicit AliasSampler(const std::vector<double>& weights);

  /// Index in [0, weights.size()).
  uint64_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace gdbmicro

#endif  // GDBMICRO_UTIL_RNG_H_
