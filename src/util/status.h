// Status: lightweight error propagation for gdbmicro.
//
// The library does not throw exceptions on hot paths; fallible operations
// return a Status (or a Result<T>, see result.h). The design follows the
// conventions of production database codebases (RocksDB, Arrow).

#ifndef GDBMICRO_UTIL_STATUS_H_
#define GDBMICRO_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace gdbmicro {

/// Canonical error space. Codes mirror the failure classes the benchmark
/// framework must distinguish: e.g. kDeadlineExceeded marks a query that hit
/// the suite timeout (paper Fig. 1(c)) and kResourceExhausted marks a query
/// that blew the configured memory budget (the paper's Sparksee OOM on
/// Q28-Q31).
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kResourceExhausted = 5,
  kDeadlineExceeded = 6,
  kUnimplemented = 7,
  kAborted = 8,
  kIOError = 9,
  kCorruption = 10,
  kInternal = 11,
  /// A transient failure of an emulated remote dependency (REST round
  /// trip, backend probe, commit path): the operation did not happen but
  /// may succeed if retried — the one class the Runner's bounded
  /// retry/backoff policy re-attempts. Everything else is permanent.
  kUnavailable = 12,
};

/// Returns a stable human-readable name for a code ("NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A status is either OK (the common case, carrying no allocation) or an
/// error code plus a message. Cheap to move, cheap to test.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace gdbmicro

/// Propagates an error Status from an expression; evaluates `expr` once.
#define GDB_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::gdbmicro::Status _gdb_status = (expr);        \
    if (!_gdb_status.ok()) return _gdb_status;      \
  } while (false)

/// Evaluates a Result<T> expression, assigning the value to `lhs` on
/// success and propagating the Status on failure.
#define GDB_ASSIGN_OR_RETURN(lhs, expr)                   \
  GDB_ASSIGN_OR_RETURN_IMPL_(                             \
      GDB_STATUS_CONCAT_(_gdb_result, __LINE__), lhs, expr)

#define GDB_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                               \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).value()

#define GDB_STATUS_CONCAT_INNER_(a, b) a##b
#define GDB_STATUS_CONCAT_(a, b) GDB_STATUS_CONCAT_INNER_(a, b)

#endif  // GDBMICRO_UTIL_STATUS_H_
