#include "src/util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace gdbmicro {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", v, kUnits[unit]);
}

std::string HumanMillis(double ms) {
  if (ms < 1.0) return StrFormat("%.0f us", ms * 1000.0);
  if (ms < 1000.0) return StrFormat("%.2f ms", ms);
  double s = ms / 1000.0;
  if (s < 120.0) return StrFormat("%.2f s", s);
  return StrFormat("%.1f min", s / 60.0);
}

}  // namespace gdbmicro
