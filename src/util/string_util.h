// Small string helpers shared across the library.

#ifndef GDBMICRO_UTIL_STRING_UTIL_H_
#define GDBMICRO_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gdbmicro {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
inline bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a byte count with binary units ("1.5 MiB").
std::string HumanBytes(uint64_t bytes);

/// Formats a duration given in milliseconds with adaptive units
/// ("850 us", "12.3 ms", "4.5 s", "2.1 min").
std::string HumanMillis(double ms);

}  // namespace gdbmicro

#endif  // GDBMICRO_UTIL_STRING_UTIL_H_
