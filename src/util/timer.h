// Wall-clock timing utilities used by the benchmark runner.

#ifndef GDBMICRO_UTIL_TIMER_H_
#define GDBMICRO_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace gdbmicro {

/// Monotonic stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Busy-waits for `micros` microseconds. Used by the engine cost models to
/// charge deterministic, CPU-bound time for emulated out-of-process work
/// (REST round trips, backend commit paths). Spinning (rather than
/// sleeping) keeps the charge accurate at microsecond scale.
inline void SpinFor(int64_t micros) {
  if (micros <= 0) return;
  Timer t;
  while (t.ElapsedMicros() < micros) {
    // spin
  }
}

}  // namespace gdbmicro

#endif  // GDBMICRO_UTIL_TIMER_H_
