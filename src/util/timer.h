// Wall-clock timing utilities used by the benchmark runner.

#ifndef GDBMICRO_UTIL_TIMER_H_
#define GDBMICRO_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <ctime>

namespace gdbmicro {

/// Monotonic stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// The calling thread's consumed CPU time in microseconds, or -1 when the
/// platform offers no per-thread clock.
inline int64_t ThreadCpuMicros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
  }
#endif
  return -1;
}

/// Busy-waits until the *calling thread* has consumed `micros`
/// microseconds of CPU time. Used by the engine cost models to charge
/// deterministic, CPU-bound time for emulated out-of-process work (REST
/// round trips, backend commit paths). Spinning (rather than sleeping)
/// keeps the charge accurate at microsecond scale; spinning on the
/// thread's CPU clock (rather than the wall clock) keeps it correct under
/// concurrency — a preempted thread is not billed for time it never
/// executed, so N concurrent sessions each pay exactly their own charges
/// instead of amplifying scheduler noise into the measurements. Platforms
/// without a per-thread clock fall back to the wall-clock spin.
inline void SpinFor(int64_t micros) {
  if (micros <= 0) return;
  int64_t start = ThreadCpuMicros();
  if (start >= 0) {
    while (ThreadCpuMicros() - start < micros) {
      // spin
    }
    return;
  }
  Timer t;
  while (t.ElapsedMicros() < micros) {
    // spin
  }
}

}  // namespace gdbmicro

#endif  // GDBMICRO_UTIL_TIMER_H_
