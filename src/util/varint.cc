#include "src/util/varint.h"

#include <cassert>

namespace gdbmicro {

void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> GetVarint64(std::string_view in, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < in.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(in[(*pos)++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return Status::Corruption("truncated varint");
}

void EncodeDeltaList(const std::vector<uint64_t>& sorted_ids,
                     std::string* out) {
  PutVarint64(out, sorted_ids.size());
  uint64_t prev = 0;
  for (uint64_t id : sorted_ids) {
    assert(id >= prev);
    PutVarint64(out, id - prev);
    prev = id;
  }
}

Result<std::vector<uint64_t>> DecodeDeltaList(const std::string& in) {
  size_t pos = 0;
  GDB_ASSIGN_OR_RETURN(uint64_t n, GetVarint64(in, &pos));
  std::vector<uint64_t> out;
  out.reserve(n);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    GDB_ASSIGN_OR_RETURN(uint64_t delta, GetVarint64(in, &pos));
    prev += delta;
    out.push_back(prev);
  }
  return out;
}

}  // namespace gdbmicro
