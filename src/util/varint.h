// Variable-length integer and delta coding. The columnar adjacency engine
// (Titan-like) compresses the neighbor ids in each adjacency row with
// delta+varint coding, which is what gives it the paper's best-in-class
// space footprint on hub-heavy graphs (Fig. 1).

#ifndef GDBMICRO_UTIL_VARINT_H_
#define GDBMICRO_UTIL_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace gdbmicro {

/// Appends `v` to `out` in LEB128 (base-128 varint) encoding.
void PutVarint64(std::string* out, uint64_t v);

/// Decodes a varint starting at in[*pos]; advances *pos. Fails with
/// kCorruption on truncated input. Takes a view so raw record payloads
/// can be decoded without copying into a std::string first.
Result<uint64_t> GetVarint64(std::string_view in, size_t* pos);

/// ZigZag mapping so small negative deltas stay small.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Delta+varint encodes a *sorted* id list. Unsorted input is rejected by
/// assertion in debug builds; callers sort first.
void EncodeDeltaList(const std::vector<uint64_t>& sorted_ids,
                     std::string* out);

/// Inverse of EncodeDeltaList.
Result<std::vector<uint64_t>> DecodeDeltaList(const std::string& in);

}  // namespace gdbmicro

#endif  // GDBMICRO_UTIL_VARINT_H_
