// Concurrent-read conformance: N threads, each with its own QuerySession,
// must observe exactly the same graph as a single-threaded client — same
// counts, same label schema, same neighborhood multisets, same property
// search answers, same traversal/BFS results — on every engine, in both
// cost-model modes. This is the contract in src/graph/engine.h ("a loaded
// engine is an immutable snapshot for the read surface") made executable;
// CI additionally runs this binary under ThreadSanitizer
// (-DGDBMICRO_SANITIZE=thread), which turns any engine-level shared
// mutable state the sessions missed into a hard failure.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/datasets/generators.h"
#include "src/graph/registry.h"
#include "src/graph/writer.h"
#include "src/query/algorithms.h"
#include "src/query/traversal.h"

namespace gdbmicro {
namespace {

constexpr int kThreads = 4;

// Everything one client observes about the loaded graph through the read
// surface. operator== gives the conformance check; the members stay
// sorted/canonical so ordering differences between engines' native walks
// cannot produce false mismatches.
struct Observation {
  uint64_t vertices = 0;
  uint64_t edges = 0;
  std::vector<std::string> edge_labels;
  // probe vertex index -> per-direction neighbor multiset
  std::vector<std::multiset<VertexId>> neighbors;
  std::vector<uint64_t> degrees;
  std::set<VertexId> property_hits;
  std::set<VertexId> bfs_visited;
  uint64_t q31_distinct_targets = 0;

  bool operator==(const Observation&) const = default;
};

// One client's full pass over the read surface, through the caller's
// session (callers own the session so the mixed-mode golden can observe
// twice through one epoch pin). Any error is reported through `ok`
// (gtest assertions are not thread-safe, so worker threads only record).
Observation Observe(const GraphEngine& engine, QuerySession& session_ref,
                    const LoadMapping& mapping,
                    const std::pair<std::string, PropertyValue>& probe_prop,
                    bool* ok) {
  Observation obs;
  CancelToken never;
  QuerySession* session = &session_ref;
  *ok = false;

  auto vcount = engine.CountVertices(*session, never);
  auto ecount = engine.CountEdges(*session, never);
  auto labels = engine.DistinctEdgeLabels(*session, never);
  if (!vcount.ok() || !ecount.ok() || !labels.ok()) return obs;
  obs.vertices = *vcount;
  obs.edges = *ecount;
  obs.edge_labels = *labels;

  for (uint64_t idx = 0; idx < mapping.vertex_ids.size(); idx += 29) {
    VertexId v = mapping.vertex_ids[idx];
    for (Direction dir :
         {Direction::kOut, Direction::kIn, Direction::kBoth}) {
      session->BeginQuery();
      auto nbrs = engine.NeighborsOf(*session, v, dir, nullptr, never);
      if (!nbrs.ok()) return obs;
      obs.neighbors.emplace_back(nbrs->begin(), nbrs->end());
    }
    session->BeginQuery();
    auto deg = engine.DegreeOf(*session, v, Direction::kBoth, never);
    if (!deg.ok()) return obs;
    obs.degrees.push_back(*deg);
  }

  session->BeginQuery();
  auto hits = engine.FindVerticesByProperty(*session, probe_prop.first,
                                            probe_prop.second, never);
  if (!hits.ok()) return obs;
  obs.property_hits.insert(hits->begin(), hits->end());

  session->BeginQuery();
  auto bfs = query::BreadthFirst(engine, *session, mapping.vertex_ids[0], 3,
                                 std::nullopt, never);
  if (!bfs.ok()) return obs;
  obs.bfs_visited.insert(bfs->visited.begin(), bfs->visited.end());

  // Q.31 through the plan layer (each client lowers its own plan).
  session->BeginQuery();
  auto q31 = query::Traversal::V().Out().Dedup().Count().ExecuteCount(
      engine, *session, never);
  if (!q31.ok()) return obs;
  obs.q31_distinct_targets = *q31;

  *ok = true;
  return obs;
}

class ConcurrencyTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { RegisterBuiltinEngines(); }
};

TEST_P(ConcurrencyTest, ThreadedReadsMatchSingleThreadedGolden) {
  datasets::GenOptions gen;
  gen.scale = 0.002;
  GraphData data = datasets::GenerateLdbc(gen);
  // A property that exists in the dataset, so the search has hits.
  ASSERT_FALSE(data.vertices.empty());
  std::pair<std::string, PropertyValue> probe_prop;
  for (const auto& v : data.vertices) {
    if (!v.properties.empty()) {
      probe_prop = v.properties.front();
      break;
    }
  }
  ASSERT_FALSE(probe_prop.first.empty());

  for (bool cost_model : {false, true}) {
    EngineOptions options;
    options.enable_cost_model = cost_model;
    // A budget large enough that the per-session arenas never trip: the
    // point here is equivalence, not exhaustion (that path is covered by
    // paper_shape_test).
    options.memory_budget_bytes = 0;
    auto engine =
        OpenEngine(GetParam(), options, /*honor_cost_model_env=*/false);
    ASSERT_TRUE(engine.ok()) << engine.status();
    auto mapping = (*engine)->BulkLoad(data);
    ASSERT_TRUE(mapping.ok()) << mapping.status();

    bool golden_ok = false;
    std::unique_ptr<QuerySession> golden_session = (*engine)->CreateSession();
    Observation golden =
        Observe(**engine, *golden_session, *mapping, probe_prop, &golden_ok);
    golden_session.reset();
    ASSERT_TRUE(golden_ok) << GetParam() << " single-threaded pass failed"
                           << " (cost model " << cost_model << ")";
    EXPECT_EQ(golden.vertices, data.vertices.size());
    EXPECT_EQ(golden.edges, data.edges.size());

    std::vector<Observation> observed(kThreads);
    std::vector<char> ok(kThreads, 0);  // vector<bool> is not thread-safe
    {
      std::vector<std::thread> clients;
      clients.reserve(kThreads);
      for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
          bool client_ok = false;
          std::unique_ptr<QuerySession> session = (*engine)->CreateSession();
          observed[static_cast<size_t>(t)] =
              Observe(**engine, *session, *mapping, probe_prop, &client_ok);
          ok[static_cast<size_t>(t)] = client_ok ? 1 : 0;
        });
      }
      for (std::thread& c : clients) c.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(ok[static_cast<size_t>(t)])
          << GetParam() << " client " << t << " failed (cost model "
          << cost_model << ")";
      EXPECT_TRUE(observed[static_cast<size_t>(t)] == golden)
          << GetParam() << " client " << t
          << " observed a different graph (cost model " << cost_model
          << ")";
    }
  }
}

// The PR-6 mixed-mode golden: reader sessions pinned to epoch E keep
// observing the pre-batch snapshot while a writer commits the next epoch,
// and only sessions opened after publication see the new graph.
//
// The epoch scheme is drain-on-publish (see src/graph/epoch.h): the
// writer logs its batch to the WAL concurrently with the readers, then
// blocks in BeginApply until every pinned session closes. So the
// observable contract is exactly: (1) while any reader session is open,
// the store stays byte-identical to the pre-batch golden even though the
// commit is already in flight (writer_waiting() is the in-flight probe);
// (2) a session's entire lifetime sees one snapshot; (3) after the
// readers drain, the commit applies, the epoch advances, and new
// sessions observe the updated graph.
TEST_P(ConcurrencyTest, PinnedReadersKeepTheirSnapshotWhileAWriterCommits) {
  constexpr int kReaders = 3;
  datasets::GenOptions gen;
  gen.scale = 0.002;
  GraphData data = datasets::GenerateLdbc(gen);
  ASSERT_FALSE(data.vertices.empty());
  std::pair<std::string, PropertyValue> probe_prop;
  for (const auto& v : data.vertices) {
    if (!v.properties.empty()) {
      probe_prop = v.properties.front();
      break;
    }
  }

  EngineOptions options;
  options.memory_budget_bytes = 0;
  auto engine = OpenEngine(GetParam(), options, /*honor_cost_model_env=*/false);
  ASSERT_TRUE(engine.ok()) << engine.status();
  auto mapping = (*engine)->BulkLoad(data);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  EpochManager& epochs = (*engine)->epochs();
  uint64_t epoch_before = epochs.current();

  // The golden pass closes its session before the write phase: a live
  // pin would block the writer forever.
  bool golden_ok = false;
  std::unique_ptr<QuerySession> golden_session = (*engine)->CreateSession();
  Observation golden =
      Observe(**engine, *golden_session, *mapping, probe_prop, &golden_ok);
  golden_session.reset();
  ASSERT_TRUE(golden_ok);

  GraphWriter writer(engine->get());
  std::atomic<int> readers_pinned{0};
  std::vector<Observation> before(kReaders), during(kReaders);
  std::vector<char> ok_before(kReaders, 0), ok_during(kReaders, 0);
  std::vector<uint64_t> session_epochs(kReaders, ~0ull);

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      std::unique_ptr<QuerySession> session = (*engine)->CreateSession();
      session_epochs[i] = session->epoch();
      readers_pinned.fetch_add(1);
      bool pass_ok = false;
      before[i] = Observe(**engine, *session, *mapping, probe_prop, &pass_ok);
      ok_before[i] = pass_ok ? 1 : 0;
      // Wait until the writer's commit is in flight and blocked on our
      // pins, then read everything again through the *same* session: the
      // snapshot must not have moved underneath us.
      while (!epochs.writer_waiting()) {
        std::this_thread::yield();
      }
      during[i] = Observe(**engine, *session, *mapping, probe_prop, &pass_ok);
      ok_during[i] = pass_ok ? 1 : 0;
    });  // session closes here: the reader unpins and the writer drains
  }

  // Start the commit only once every reader holds its pin, so the apply
  // phase is guaranteed to find the gate contended.
  while (readers_pinned.load() < kReaders) {
    std::this_thread::yield();
  }
  WriteBatch batch;
  PendingVertex added = batch.AddVertex(
      "person", {{"mixed_golden", PropertyValue(true)}});
  batch.AddEdge(added, VertexRef(mapping->vertex_ids[0]), "knows", {});
  batch.SetVertexProperty(VertexRef(mapping->vertex_ids[0]), "touched",
                          PropertyValue(true));
  auto receipt = writer.Commit(batch);
  ASSERT_TRUE(receipt.ok()) << receipt.status();
  for (std::thread& r : readers) r.join();

  for (int t = 0; t < kReaders; ++t) {
    size_t i = static_cast<size_t>(t);
    ASSERT_TRUE(ok_before[i]) << GetParam() << " reader " << t;
    ASSERT_TRUE(ok_during[i]) << GetParam() << " reader " << t;
    EXPECT_EQ(session_epochs[i], epoch_before) << GetParam();
    EXPECT_TRUE(before[i] == golden)
        << GetParam() << " reader " << t
        << " saw a different graph before the commit";
    EXPECT_TRUE(during[i] == golden)
        << GetParam() << " reader " << t
        << " saw the write leak into its pinned snapshot";
  }

  // Publication: the epoch advanced and a fresh session sees the batch.
  EXPECT_EQ(epochs.current(), epoch_before + 1);
  EXPECT_EQ(receipt->epoch, epoch_before + 1);
  std::unique_ptr<QuerySession> after = (*engine)->CreateSession();
  EXPECT_EQ(after->epoch(), epoch_before + 1);
  CancelToken never;
  auto vcount = (*engine)->CountVertices(*after, never);
  auto ecount = (*engine)->CountEdges(*after, never);
  ASSERT_TRUE(vcount.ok());
  ASSERT_TRUE(ecount.ok());
  EXPECT_EQ(*vcount, golden.vertices + 1);
  EXPECT_EQ(*ecount, golden.edges + 1);
  ASSERT_EQ(receipt->vertex_ids.size(), 1u);
  auto added_vertex = (*engine)->GetVertex(*after, receipt->vertex_ids[0]);
  ASSERT_TRUE(added_vertex.ok());
  EXPECT_NE(FindProperty(added_vertex->properties, "mixed_golden"), nullptr);
  auto touched = (*engine)->GetVertex(*after, mapping->vertex_ids[0]);
  ASSERT_TRUE(touched.ok());
  EXPECT_NE(FindProperty(touched->properties, "touched"), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, ConcurrencyTest,
    ::testing::Values("arango", "blaze", "neo19", "neo30", "orient",
                      "sparksee", "sqlg", "titan05", "titan10"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace gdbmicro
