// End-to-end tests of the benchmark core: query catalog integrity, runner
// execution (single/batch, timeouts, failure recording), space
// measurement, reporting, the Table 4 summarizer, and the complex query
// workload on the ldbc dataset.

#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "src/core/complex.h"
#include "src/core/queries.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/datasets/generators.h"

namespace gdbmicro {
namespace {

using core::Category;
using core::ComplexQueryCatalog;
using core::Measurement;
using core::QueryCatalog;
using core::Runner;
using core::RunnerOptions;

datasets::GenOptions TinyScale() {
  datasets::GenOptions options;
  options.scale = 0.004;
  return options;
}

RunnerOptions FastRunner() {
  RunnerOptions options;
  options.deadline = std::chrono::milliseconds(5000);
  options.batch_iterations = 3;
  options.enable_cost_model = false;  // unit tests measure semantics
  options.memory_budget_bytes = 0;
  return options;
}

TEST(QueryCatalogTest, CoversTable2) {
  std::set<int> numbers;
  int bfs_variants = 0;
  for (const auto& spec : QueryCatalog()) {
    numbers.insert(spec.number);
    EXPECT_FALSE(spec.gremlin.empty()) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    ASSERT_TRUE(spec.run != nullptr) << spec.name;
    if (spec.number == 32 || spec.number == 33) ++bfs_variants;
  }
  // Q2..Q35 (Q1, the load, is the runner's job).
  for (int q = 2; q <= 35; ++q) {
    EXPECT_EQ(numbers.count(q), 1u) << "missing Q" << q;
  }
  EXPECT_EQ(bfs_variants, 8);  // depths 2-5 for both Q32 and Q33

  // Category sanity: Table 2's row ranges.
  for (const auto& spec : QueryCatalog()) {
    if (spec.number <= 7) EXPECT_EQ(spec.category, Category::kCreate);
    if (spec.number >= 8 && spec.number <= 15)
      EXPECT_EQ(spec.category, Category::kRead);
    if (spec.number >= 16 && spec.number <= 17)
      EXPECT_EQ(spec.category, Category::kUpdate);
    if (spec.number >= 18 && spec.number <= 21)
      EXPECT_EQ(spec.category, Category::kDelete);
    if (spec.number >= 22) EXPECT_EQ(spec.category, Category::kTraversal);
    EXPECT_EQ(spec.mutates,
              spec.category == Category::kCreate ||
                  spec.category == Category::kUpdate ||
                  spec.category == Category::kDelete)
        << spec.name;
  }
}

TEST(QueriesByNumberTest, SelectsRequestedSubsets) {
  auto bfs = core::QueriesByNumber({32});
  EXPECT_EQ(bfs.size(), 4u);
  auto cud = core::QueriesByNumber({2, 3, 4});
  EXPECT_EQ(cud.size(), 3u);
}

TEST(RunnerTest, FullSuiteOnSmallDatasetAllEnginesSucceed) {
  GraphData data = datasets::GenerateYeast(TinyScale());
  Runner runner(FastRunner());
  std::vector<const core::QuerySpec*> specs;
  for (const auto& spec : QueryCatalog()) specs.push_back(&spec);

  for (const std::string& engine :
       {"neo19", "sparksee", "sqlg", "arango", "titan10", "orient", "blaze"}) {
    auto results = runner.RunEngine(engine, data, specs);
    ASSERT_TRUE(results.ok()) << engine << ": " << results.status();
    // Load + every spec in single and batch mode.
    EXPECT_EQ(results->size(), 1 + 2 * specs.size()) << engine;
    for (const Measurement& m : *results) {
      EXPECT_TRUE(m.status.ok())
          << engine << " " << m.query << ": " << m.status;
      EXPECT_GE(m.millis, 0.0);
    }
  }
}

TEST(RunnerTest, ReadQueriesRunBeforeMutations) {
  GraphData data = datasets::GenerateYeast(TinyScale());
  Runner runner(FastRunner());
  std::vector<const core::QuerySpec*> specs;
  // Hand the runner a mutation-first order; it must still run reads first.
  for (const auto& spec : QueryCatalog()) {
    if (spec.mutates) specs.push_back(&spec);
  }
  for (const auto& spec : QueryCatalog()) {
    if (!spec.mutates) specs.push_back(&spec);
  }
  auto results = runner.RunEngine("neo19", data, specs);
  ASSERT_TRUE(results.ok());
  bool seen_mutation = false;
  for (const Measurement& m : *results) {
    if (m.category == Category::kLoad) continue;
    bool is_mutation = m.category == Category::kCreate ||
                       m.category == Category::kUpdate ||
                       m.category == Category::kDelete;
    if (is_mutation) seen_mutation = true;
    if (!is_mutation) {
      EXPECT_FALSE(seen_mutation)
          << m.query << " ran after a mutating query";
    }
  }
}

TEST(RunnerTest, DeadlineProducesTimeoutMeasurement) {
  GraphData data = datasets::GenerateMiCo(TinyScale());
  RunnerOptions options = FastRunner();
  options.deadline = std::chrono::milliseconds(0);  // everything times out
  options.run_batch = false;
  Runner runner(options);
  auto specs = core::QueriesByNumber({31});
  auto results = runner.RunEngine("neo19", data, specs);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);  // load + Q31
  const Measurement& q31 = results->back();
  EXPECT_TRUE(q31.timed_out()) << q31.status;
}

TEST(RunnerTest, MemoryBudgetProducesResourceExhausted) {
  GraphData data = datasets::GenerateMiCo(TinyScale());
  RunnerOptions options = FastRunner();
  options.memory_budget_bytes = 16 * 1024;  // tiny arena
  options.run_batch = false;
  Runner runner(options);
  auto specs = core::QueriesByNumber({30});
  auto results = runner.RunEngine("sparksee", data, specs);
  ASSERT_TRUE(results.ok());
  const Measurement& q30 = results->back();
  EXPECT_TRUE(q30.status.IsResourceExhausted()) << q30.status;

  // Other engines are unaffected by the arena budget.
  auto neo = runner.RunEngine("neo19", data, specs);
  ASSERT_TRUE(neo.ok());
  EXPECT_TRUE(neo->back().status.ok());
}

TEST(RunnerTest, BatchIsAtLeastSingleWork) {
  GraphData data = datasets::GenerateYeast(TinyScale());
  RunnerOptions options = FastRunner();
  options.batch_iterations = 10;
  Runner runner(options);
  auto specs = core::QueriesByNumber({23});
  auto results = runner.RunEngine("neo19", data, specs);
  ASSERT_TRUE(results.ok());
  double single = 0, batch = 0;
  uint64_t single_items = 0, batch_items = 0;
  for (const Measurement& m : *results) {
    if (m.query != "Q23") continue;
    if (m.mode == Measurement::Mode::kSingle) {
      single = m.millis;
      single_items = m.items;
    } else {
      batch = m.millis;
      batch_items = m.items;
    }
  }
  // Batch does at least comparable work. Both runs are microseconds at
  // this scale and the single run pays the one-time plan lowering, so
  // allow scheduler-noise slop around the wall-time comparison; the item
  // accumulation below is the deterministic part of the contract.
  EXPECT_GE(batch + 0.25, single * 0.5);
  EXPECT_GE(batch_items, single_items);  // 10 distinct picks accumulated
}

TEST(RunnerTest, PropertyIndexOptionSpeedsUpSearch) {
  datasets::GenOptions gen;
  gen.scale = 0.02;
  GraphData data = datasets::GenerateMiCo(gen);
  RunnerOptions options = FastRunner();
  options.run_batch = false;
  auto specs = core::QueriesByNumber({11});

  Runner plain(options);
  auto unindexed = plain.RunEngine("neo19", data, specs);
  ASSERT_TRUE(unindexed.ok());

  options.create_property_index = true;
  Runner indexed(options);
  auto with_index = indexed.RunEngine("neo19", data, specs);
  ASSERT_TRUE(with_index.ok());

  double t_plain = unindexed->back().millis;
  double t_indexed = with_index->back().millis;
  EXPECT_TRUE(with_index->back().status.ok());
  EXPECT_LT(t_indexed, t_plain) << "index should accelerate Q11";
  // Same result cardinality either way.
  EXPECT_EQ(unindexed->back().items, with_index->back().items);
}

TEST(SpaceTest, MeasureSpaceReportsBytes) {
  GraphData data = datasets::GenerateYeast(TinyScale());
  Runner runner(FastRunner());
  auto loaded = runner.Load("neo19", data);
  ASSERT_TRUE(loaded.ok());
  std::string scratch = ::testing::TempDir() + "/gdbmicro_space_test";
  auto bytes = core::MeasureSpace(*loaded->engine, scratch);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  EXPECT_GT(*bytes, 1000u);
}

TEST(ComplexTest, CatalogHasThirteenQueries) {
  const auto& catalog = ComplexQueryCatalog();
  ASSERT_EQ(catalog.size(), 13u);
  std::vector<std::string> expected = {
      "max-iid",  "max-oid",  "create",   "city",
      "company",  "university", "friend1", "friend2",
      "friend-tags", "add-tags", "friend-of-friend", "triangle", "places"};
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(catalog[i].name, expected[i]);
  }
}

TEST(ComplexTest, AllComplexQueriesRunOnLdbc) {
  GraphData data = datasets::GenerateLdbc(TinyScale());
  Runner runner(FastRunner());
  for (const std::string& engine : {"neo19", "sqlg", "sparksee"}) {
    auto loaded = runner.Load(engine, data);
    ASSERT_TRUE(loaded.ok()) << engine;
    core::QueryContext ctx;
    ctx.engine = loaded->engine.get();
    ctx.session = loaded->session.get();
    ctx.workload = loaded->workload.get();
    ctx.cancel = CancelToken::WithTimeout(std::chrono::seconds(30));
    for (const auto& spec : ComplexQueryCatalog()) {
      ctx.iteration = 0;
      auto r = spec.run(ctx);
      EXPECT_TRUE(r.ok()) << engine << " " << spec.name << ": " << r.status();
    }
  }
}

TEST(ComplexTest, ResultsAgreeAcrossEngines) {
  GraphData data = datasets::GenerateLdbc(TinyScale());
  Runner runner(FastRunner());
  std::map<std::string, uint64_t> reference;  // query -> items from neo19
  for (const std::string& engine : {"neo19", "sqlg", "titan10", "blaze"}) {
    auto loaded = runner.Load(engine, data);
    ASSERT_TRUE(loaded.ok()) << engine;
    core::QueryContext ctx;
    ctx.engine = loaded->engine.get();
    ctx.session = loaded->session.get();
    ctx.workload = loaded->workload.get();
    ctx.cancel = CancelToken::WithTimeout(std::chrono::seconds(30));
    for (const auto& spec : ComplexQueryCatalog()) {
      if (spec.mutates) continue;  // read-only queries must agree exactly
      ctx.iteration = 0;
      auto r = spec.run(ctx);
      ASSERT_TRUE(r.ok()) << engine << " " << spec.name;
      auto [it, inserted] = reference.emplace(spec.name, r->items);
      if (!inserted) {
        EXPECT_EQ(r->items, it->second) << engine << " " << spec.name;
      }
    }
  }
}

TEST(ReportTest, FormatCellClasses) {
  Measurement m;
  m.millis = 12.5;
  EXPECT_EQ(core::FormatCell(m), "12.50 ms");
  m.status = Status::DeadlineExceeded("x");
  EXPECT_EQ(core::FormatCell(m), "timeout");
  m.status = Status::ResourceExhausted("x");
  EXPECT_EQ(core::FormatCell(m), "oom");
  m.status = Status::Internal("x");
  EXPECT_EQ(core::FormatCell(m), "err");
}

std::vector<Measurement> FakeResults() {
  std::vector<Measurement> results;
  auto add = [&](const char* engine, const char* query, Status status,
                 double ms) {
    Measurement m;
    m.engine = engine;
    m.dataset = "frb-s";
    m.query = query;
    m.status = status;
    m.millis = ms;
    m.mode = Measurement::Mode::kSingle;
    results.push_back(m);
  };
  add("neo19", "Q8", Status::OK(), 1.0);
  add("neo19", "Q9", Status::OK(), 2.0);
  add("blaze", "Q8", Status::OK(), 100.0);
  add("blaze", "Q9", Status::DeadlineExceeded("t"), 5000.0);
  return results;
}

TEST(ReportTest, PivotTableLaysOutCells) {
  core::PivotOptions options;
  options.dataset = "frb-s";
  options.mode = Measurement::Mode::kSingle;
  options.engine_order = {"neo19", "blaze"};
  std::string table = core::PivotTable(FakeResults(), options);
  EXPECT_NE(table.find("Q8"), std::string::npos);
  EXPECT_NE(table.find("timeout"), std::string::npos);
  EXPECT_NE(table.find("neo19"), std::string::npos);
}

TEST(ReportTest, CountFailuresAndCumulative) {
  auto failures =
      core::CountFailures(FakeResults(), Measurement::Mode::kSingle);
  EXPECT_EQ(failures["neo19"], 0u);
  EXPECT_EQ(failures["blaze"], 1u);

  auto totals = core::CumulativeMillis(FakeResults(), "frb-s",
                                       Measurement::Mode::kSingle, 7000.0);
  EXPECT_DOUBLE_EQ(totals["neo19"], 3.0);
  EXPECT_DOUBLE_EQ(totals["blaze"], 100.0 + 7000.0);  // timeout charged
}

TEST(ReportTest, Table4SymbolsReflectPerformance) {
  auto table = core::SummarizeTable4(FakeResults());
  // neo19 is near-best on GraphStatistics; blaze failed a test there.
  EXPECT_EQ(table["neo19"]["GraphStatistics"], core::SummarySymbol::kGood);
  EXPECT_EQ(table["blaze"]["GraphStatistics"], core::SummarySymbol::kWarn);
  std::string rendered =
      core::FormatTable4(table, {"neo19", "blaze"});
  EXPECT_NE(rendered.find("neo19"), std::string::npos);
  EXPECT_NE(rendered.find("GraphStatistics"), std::string::npos);
}

TEST(ReportTest, CsvExport) {
  std::string path = ::testing::TempDir() + "/gdbmicro_results.csv";
  ASSERT_TRUE(core::WriteCsv(FakeResults(), path).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "engine,dataset,query,category,mode,status,millis,items,"
            "lat_samples,lat_min_ms,lat_p50_ms,lat_p95_ms,lat_p99_ms,"
            "lat_max_ms");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4);
}

}  // namespace
}  // namespace gdbmicro
