// Coverage for paths not exercised elsewhere: traversal edge-step
// combinators, registry semantics, report formatting corners, metric
// options, and small utility formatting.

#include <gtest/gtest.h>

#include "src/core/report.h"
#include "src/datasets/metrics.h"
#include "src/engines/neoish/neo_engine.h"
#include "src/graph/registry.h"
#include "src/query/traversal.h"
#include "src/storage/bitmap.h"
#include "src/storage/btree.h"
#include "src/util/string_util.h"

namespace gdbmicro {
namespace {

using query::Traversal;

class EdgeStepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine = OpenEngine("neo19", EngineOptions{});
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).value();
    session_ = engine_->CreateSession();
    a_ = engine_->AddVertex("n", {}).value();
    b_ = engine_->AddVertex("n", {}).value();
    PropertyMap w;
    w.emplace_back("w", PropertyValue(int64_t{9}));
    e_ = engine_->AddEdge(a_, b_, "link", w).value();
  }
  std::unique_ptr<GraphEngine> engine_;
  std::unique_ptr<QuerySession> session_;
  VertexId a_ = 0, b_ = 0;
  EdgeId e_ = 0;
  CancelToken never_;
};

TEST_F(EdgeStepTest, EdgeSourceAndEndpointSteps) {
  auto out_v = Traversal::E(e_).OutV().ExecuteIds(*engine_, *session_, never_);
  ASSERT_TRUE(out_v.ok());
  EXPECT_EQ(*out_v, std::vector<uint64_t>{a_});
  auto in_v = Traversal::E(e_).InV().ExecuteIds(*engine_, *session_, never_);
  ASSERT_TRUE(in_v.ok());
  EXPECT_EQ(*in_v, std::vector<uint64_t>{b_});
}

TEST_F(EdgeStepTest, EdgeHasAndValues) {
  auto n = Traversal::E()
               .Has("w", PropertyValue(int64_t{9}))
               .Count()
               .ExecuteCount(*engine_, *session_, never_);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  auto values = Traversal::E(e_).Values("w").ExecuteValues(*engine_, *session_, never_);
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*values, std::vector<std::string>{"9"});
}

TEST_F(EdgeStepTest, MissingSourceIdYieldsEmpty) {
  // Gremlin semantics: g.V(id)/g.E(id) on a missing element is an empty
  // traverser set, not a query error.
  auto v = Traversal::V(99999).Execute(*engine_, *session_, never_);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_TRUE(v->rows.empty());
  auto e = Traversal::E(99999).Execute(*engine_, *session_, never_);
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_TRUE(e->rows.empty());
}

TEST_F(EdgeStepTest, LabelFilteredEdgeSteps) {
  auto n = Traversal::V(a_)
               .OutE(std::string("link"))
               .Count()
               .ExecuteCount(*engine_, *session_, never_);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  auto none = Traversal::V(a_)
                  .OutE(std::string("nope"))
                  .Count()
                  .ExecuteCount(*engine_, *session_, never_);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);
}

TEST(RegistryTest, NamesAndReplace) {
  RegisterBuiltinEngines();
  auto& registry = EngineRegistry::Instance();
  auto names = registry.Names();
  EXPECT_EQ(names.size(), 9u);
  EXPECT_TRUE(registry.Has("neo19"));
  EXPECT_FALSE(registry.Has("neoXX"));
  // Re-registering replaces rather than duplicating.
  registry.Register("neo19", [] { return MakeNeoEngine(false); });
  EXPECT_EQ(registry.Names().size(), 9u);
  auto engine = registry.Create("neo19");
  ASSERT_TRUE(engine.ok());
}

TEST(MetricsOptionsTest, DiameterCanBeSkipped) {
  GraphData data;
  data.vertices.push_back({"n", {}});
  data.vertices.push_back({"n", {}});
  data.edges.push_back({0, 1, "l", {}});
  datasets::MetricsOptions options;
  options.compute_diameter = false;
  auto stats = datasets::ComputeStats(data, options);
  EXPECT_EQ(stats.diameter, 0u);
  options.compute_diameter = true;
  stats = datasets::ComputeStats(data, options);
  EXPECT_EQ(stats.diameter, 1u);
}

TEST(FormattingTest, HumanMillisBands) {
  EXPECT_EQ(HumanMillis(0.5), "500 us");
  EXPECT_EQ(HumanMillis(12.345), "12.35 ms");
  EXPECT_EQ(HumanMillis(2500.0), "2.50 s");
  EXPECT_EQ(HumanMillis(150000.0), "2.5 min");
}

TEST(FormattingTest, PivotWithoutDatasetFilterPrefixesRows) {
  core::Measurement m;
  m.engine = "neo19";
  m.dataset = "yeast";
  m.query = "Q8";
  m.millis = 1;
  core::PivotOptions options;  // no dataset filter
  std::string table = core::PivotTable({m}, options);
  EXPECT_NE(table.find("yeast Q8"), std::string::npos);
}

TEST(BitmapCoverageTest, EmptySerializeRoundTrip) {
  Bitmap empty;
  std::string buf;
  empty.Serialize(&buf);
  size_t pos = 0;
  auto round = Bitmap::Deserialize(buf, &pos);
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->Empty());
  EXPECT_FALSE(Bitmap::Deserialize("\x05", &(pos = 0)).ok());  // truncated
}

TEST(BTreeCoverageTest, ClearResetsEverything) {
  BTree<uint64_t, uint64_t> tree;
  for (uint64_t i = 0; i < 1000; ++i) tree.Insert(i, i);
  EXPECT_GT(tree.height(), 1);
  tree.Clear();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Insert(5, 5));
  EXPECT_TRUE(tree.Contains(5, 5));
}

TEST(EngineLifecycleTest, OpenCloseAllEngines) {
  RegisterBuiltinEngines();
  for (const std::string& name : EngineRegistry::Instance().Names()) {
    auto engine = OpenEngine(name, EngineOptions{});
    ASSERT_TRUE(engine.ok()) << name;
    EXPECT_TRUE((*engine)->AddVertex("n", {}).ok()) << name;
    EXPECT_TRUE((*engine)->Close().ok()) << name;
  }
}

}  // namespace
}  // namespace gdbmicro
