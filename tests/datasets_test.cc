// Tests for the dataset generators (Table 3 shape tracking), the graph
// metrics, and the deterministic workload picker.

#include <gtest/gtest.h>

#include <set>

#include "src/datasets/generators.h"
#include "src/datasets/metrics.h"
#include "src/datasets/workload.h"

namespace gdbmicro {
namespace {

using datasets::ComputeStats;
using datasets::GenOptions;
using datasets::GraphStats;

GenOptions TestScale() {
  GenOptions options;
  options.scale = 0.01;  // 1/100 of paper sizes: fast tests
  return options;
}

TEST(GeneratorsTest, AllDatasetsValidateAndAreDeterministic) {
  for (const std::string& name : datasets::AllDatasetNames()) {
    auto a = datasets::GenerateByName(name, TestScale());
    ASSERT_TRUE(a.ok()) << name;
    EXPECT_TRUE(a->Validate().ok()) << name;
    EXPECT_GT(a->VertexCount(), 0u) << name;
    EXPECT_GT(a->EdgeCount(), 0u) << name;
    auto b = datasets::GenerateByName(name, TestScale());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->vertices.size(), b->vertices.size()) << name;
    ASSERT_EQ(a->edges.size(), b->edges.size()) << name;
    for (size_t i = 0; i < a->edges.size(); i += 97) {
      EXPECT_EQ(a->edges[i].src, b->edges[i].src) << name;
      EXPECT_EQ(a->edges[i].label, b->edges[i].label) << name;
    }
  }
}

TEST(GeneratorsTest, UnknownNameFails) {
  EXPECT_FALSE(datasets::GenerateByName("nope", TestScale()).ok());
}

TEST(GeneratorsTest, YeastShape) {
  GraphData data = datasets::GenerateYeast(TestScale());
  GraphStats s = ComputeStats(data);
  // Paper row: 2.3K nodes, 7.1K edges, 167 labels, dense-ish, ~100 comps.
  EXPECT_NEAR(static_cast<double>(s.vertices), 2361, 50);
  EXPECT_NEAR(static_cast<double>(s.edges), 7182, 100);
  EXPECT_GT(s.labels, 100u);
  EXPECT_LE(s.labels, 169u);
  EXPECT_GT(s.max_component, s.vertices * 9 / 10);
  // Only node properties.
  EXPECT_FALSE(data.vertices[0].properties.empty());
  EXPECT_TRUE(data.edges[0].properties.empty());
}

TEST(GeneratorsTest, MiCoShape) {
  GraphData data = datasets::GenerateMiCo(TestScale());
  GraphStats s = ComputeStats(data);
  // Labels: number of co-authored papers, at most 106 values.
  EXPECT_LE(s.labels, 106u);
  EXPECT_GT(s.labels, 50u);
  // Power-law hubs: max degree far above average.
  EXPECT_GT(static_cast<double>(s.max_degree), 20.0 * s.avg_degree);
}

TEST(GeneratorsTest, FreebaseSamplesShapes) {
  GraphData small = datasets::GenerateFreebase(datasets::FreebaseKind::kSmall,
                                               TestScale());
  GraphData medium = datasets::GenerateFreebase(
      datasets::FreebaseKind::kMedium, TestScale());
  GraphData topic = datasets::GenerateFreebase(datasets::FreebaseKind::kTopic,
                                               TestScale());

  // Frb-S and Frb-M have more vertices than edges (paper Table 3).
  EXPECT_GT(small.VertexCount(), small.EdgeCount());
  EXPECT_GT(medium.VertexCount(), medium.EdgeCount());
  // Frb-O is the dense topic subgraph: E > 2V.
  EXPECT_GT(topic.EdgeCount(), 2 * topic.VertexCount());

  GraphStats ss = ComputeStats(small, {.compute_diameter = false});
  // Extreme fragmentation: a large fraction of vertices form tiny comps.
  EXPECT_GT(ss.components, ss.vertices / 10);
  EXPECT_GT(ss.modularity, 0.5);

  // Topic restriction: only the six Frb-O domains appear as labels.
  std::set<std::string> domains;
  for (const auto& v : topic.vertices) domains.insert(v.label);
  EXPECT_LE(domains.size(), 6u);
}

TEST(GeneratorsTest, LdbcShape) {
  GraphData data = datasets::GenerateLdbc(TestScale());
  GraphStats s = ComputeStats(data, {.compute_diameter = false});
  // The paper's ldbc: ONE component, 15 labels, properties on nodes AND
  // edges, an order denser than the Freebase samples.
  EXPECT_EQ(s.components, 1u) << "ldbc must be a single connected component";
  EXPECT_LE(s.labels, 15u);
  EXPECT_GE(s.labels, 8u);
  EXPECT_GT(s.avg_degree, 8.0);
  bool edge_props = false;
  for (const auto& e : data.edges) {
    if (!e.properties.empty()) {
      edge_props = true;
      break;
    }
  }
  EXPECT_TRUE(edge_props);
  EXPECT_EQ(ComputeStats(data, {.compute_diameter = false}).modularity, 0.0);
}

TEST(MetricsTest, HandComputedGraph) {
  // Two triangles sharing no vertices + 1 isolated vertex.
  GraphData data;
  for (int i = 0; i < 7; ++i) data.vertices.push_back({"n", {}});
  auto edge = [&](uint64_t a, uint64_t b) {
    data.edges.push_back({a, b, "l", {}});
  };
  edge(0, 1);
  edge(1, 2);
  edge(2, 0);
  edge(3, 4);
  edge(4, 5);
  edge(5, 3);
  GraphStats s = ComputeStats(data);
  EXPECT_EQ(s.vertices, 7u);
  EXPECT_EQ(s.edges, 6u);
  EXPECT_EQ(s.labels, 1u);
  EXPECT_EQ(s.components, 3u);  // two triangles + isolated vertex
  EXPECT_EQ(s.max_component, 3u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_NEAR(s.avg_degree, 12.0 / 7.0, 1e-9);
  EXPECT_EQ(s.diameter, 1u);  // triangle diameter
  // Two equal communities, no isolated degree: Q = 2 * (1/2 * 1/2) = 0.5.
  EXPECT_NEAR(s.modularity, 0.5, 1e-9);
}

TEST(WorkloadTest, DeterministicAcrossInstances) {
  GraphData data = datasets::GenerateYeast(TestScale());
  LoadMapping mapping;
  for (uint64_t i = 0; i < data.vertices.size(); ++i) {
    mapping.vertex_ids.push_back(i * 2);  // engine ids: even numbers
  }
  for (uint64_t i = 0; i < data.edges.size(); ++i) {
    mapping.edge_ids.push_back(i * 2 + 1);
  }
  datasets::Workload w1(&data, &mapping, 42);
  datasets::Workload w2(&data, &mapping, 42);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(w1.ReadVertex(i), w2.ReadVertex(i));
    EXPECT_EQ(w1.ReadEdge(i), w2.ReadEdge(i));
    EXPECT_EQ(w1.EdgeLabel(i), w2.EdgeLabel(i));
    EXPECT_EQ(w1.VertexProperty(i), w2.VertexProperty(i));
  }
  datasets::Workload w3(&data, &mapping, 43);
  int diffs = 0;
  for (int i = 0; i < 50; ++i) {
    if (w1.ReadVertex(i) != w3.ReadVertex(i)) ++diffs;
  }
  EXPECT_GT(diffs, 25);  // different seed, different picks
}

TEST(WorkloadTest, DeletePoolDisjointFromReadPool) {
  GraphData data = datasets::GenerateMiCo(TestScale());
  LoadMapping mapping;
  for (uint64_t i = 0; i < data.vertices.size(); ++i) {
    mapping.vertex_ids.push_back(i);
  }
  for (uint64_t i = 0; i < data.edges.size(); ++i) {
    mapping.edge_ids.push_back(i);
  }
  datasets::Workload w(&data, &mapping, 7);
  std::set<VertexId> reads, deletes;
  for (int i = 0; i < 200; ++i) {
    reads.insert(w.ReadVertex(i));
    deletes.insert(w.DeleteVertex(i));
  }
  for (VertexId d : deletes) {
    EXPECT_EQ(reads.count(d), 0u) << "delete victim also sampled for reads";
  }
}

TEST(WorkloadTest, SampledPropertiesExist) {
  GraphData data = datasets::GenerateLdbc(TestScale());
  LoadMapping mapping;
  for (uint64_t i = 0; i < data.vertices.size(); ++i) {
    mapping.vertex_ids.push_back(i);
  }
  for (uint64_t i = 0; i < data.edges.size(); ++i) {
    mapping.edge_ids.push_back(i);
  }
  datasets::Workload w(&data, &mapping, 11);
  for (int i = 0; i < 20; ++i) {
    auto [name, value] = w.VertexProperty(i);
    bool found = false;
    for (const auto& v : data.vertices) {
      const PropertyValue* p = FindProperty(v.properties, name);
      if (p != nullptr && *p == value) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << name;
    // ldbc has edge properties, so these must exist too.
    auto [ename, evalue] = w.EdgeProperty(i);
    EXPECT_FALSE(ename.empty());
    (void)evalue;
  }
  EXPECT_GE(w.DegreeK(), 2u);
}

}  // namespace
}  // namespace gdbmicro
