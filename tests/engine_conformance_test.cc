// Cross-engine conformance: every engine variant must implement identical
// property-graph semantics — only performance may differ. The fixture is
// parameterized over all nine registered engines and checks CRUD
// behaviour, scans, traversal primitives, deletion cascades, indexing and
// checkpointing against hand-computed expectations and against a seeded
// random reference model.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "src/datasets/generators.h"
#include "src/graph/registry.h"
#include "src/query/algorithms.h"

namespace gdbmicro {
namespace {

class EngineTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    RegisterBuiltinEngines();
    EngineOptions options;  // no cost model, no memory budget in unit tests
    auto engine = OpenEngine(GetParam(), options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();
    session_ = engine_->CreateSession();
  }

  std::unique_ptr<GraphEngine> engine_;
  std::unique_ptr<QuerySession> session_;
  CancelToken never_;
};

TEST_P(EngineTest, InfoIsPopulated) {
  EngineInfo info = engine_->info();
  EXPECT_EQ(info.name, GetParam());
  EXPECT_FALSE(info.emulates.empty());
  EXPECT_FALSE(info.storage.empty());
}

TEST_P(EngineTest, AddAndGetVertex) {
  PropertyMap props;
  props.emplace_back("name", PropertyValue("ada"));
  props.emplace_back("age", PropertyValue(int64_t{36}));
  auto id = engine_->AddVertex("person", props);
  ASSERT_TRUE(id.ok()) << id.status();

  auto rec = engine_->GetVertex(*session_, *id);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->label, "person");
  const PropertyValue* name = FindProperty(rec->properties, "name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->string_value(), "ada");
  const PropertyValue* age = FindProperty(rec->properties, "age");
  ASSERT_NE(age, nullptr);
  EXPECT_EQ(age->int_value(), 36);
}

TEST_P(EngineTest, GetMissingVertexFails) {
  auto rec = engine_->GetVertex(*session_, 987654);
  EXPECT_FALSE(rec.ok());
  EXPECT_TRUE(rec.status().IsNotFound());
}

TEST_P(EngineTest, AddEdgeRequiresEndpoints) {
  auto v = engine_->AddVertex("a", {});
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(engine_->AddEdge(*v, 424242, "l", {}).ok());
  EXPECT_FALSE(engine_->AddEdge(424242, *v, "l", {}).ok());
}

TEST_P(EngineTest, AddAndGetEdgeWithProperties) {
  auto a = engine_->AddVertex("a", {});
  auto b = engine_->AddVertex("b", {});
  ASSERT_TRUE(a.ok() && b.ok());
  PropertyMap props;
  props.emplace_back("weight", PropertyValue(2.5));
  auto e = engine_->AddEdge(*a, *b, "likes", props);
  ASSERT_TRUE(e.ok()) << e.status();

  auto rec = engine_->GetEdge(*session_, *e);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->src, *a);
  EXPECT_EQ(rec->dst, *b);
  EXPECT_EQ(rec->label, "likes");
  const PropertyValue* w = FindProperty(rec->properties, "weight");
  ASSERT_NE(w, nullptr);
  EXPECT_DOUBLE_EQ(w->double_value(), 2.5);

  auto ends = engine_->GetEdgeEnds(*session_, *e);
  ASSERT_TRUE(ends.ok());
  EXPECT_EQ(ends->src, *a);
  EXPECT_EQ(ends->dst, *b);
  EXPECT_EQ(ends->label, "likes");
}

TEST_P(EngineTest, CountsTrackMutations) {
  auto a = engine_->AddVertex("x", {});
  auto b = engine_->AddVertex("x", {});
  auto c = engine_->AddVertex("x", {});
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(engine_->AddEdge(*a, *b, "e", {}).ok());
  ASSERT_TRUE(engine_->AddEdge(*b, *c, "e", {}).ok());

  EXPECT_EQ(engine_->CountVertices(*session_, never_).value(), 3u);
  EXPECT_EQ(engine_->CountEdges(*session_, never_).value(), 2u);

  ASSERT_TRUE(engine_->RemoveVertex(*b).ok());  // removes both edges
  EXPECT_EQ(engine_->CountVertices(*session_, never_).value(), 2u);
  EXPECT_EQ(engine_->CountEdges(*session_, never_).value(), 0u);
}

TEST_P(EngineTest, SetAndUpdateVertexProperty) {
  auto v = engine_->AddVertex("n", {});
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(engine_->SetVertexProperty(*v, "k", PropertyValue(int64_t{1})).ok());
  ASSERT_TRUE(engine_->SetVertexProperty(*v, "k", PropertyValue(int64_t{2})).ok());
  auto rec = engine_->GetVertex(*session_, *v);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->properties.size(), 1u);
  EXPECT_EQ(rec->properties[0].second.int_value(), 2);
}

TEST_P(EngineTest, SetAndUpdateEdgeProperty) {
  auto a = engine_->AddVertex("n", {});
  auto b = engine_->AddVertex("n", {});
  auto e = engine_->AddEdge(*a, *b, "l", {});
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(engine_->SetEdgeProperty(*e, "w", PropertyValue("x")).ok());
  ASSERT_TRUE(engine_->SetEdgeProperty(*e, "w", PropertyValue("y")).ok());
  auto rec = engine_->GetEdge(*session_, *e);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->properties.size(), 1u);
  EXPECT_EQ(rec->properties[0].second.string_value(), "y");
}

TEST_P(EngineTest, RemoveProperties) {
  PropertyMap props;
  props.emplace_back("a", PropertyValue(int64_t{1}));
  props.emplace_back("b", PropertyValue(int64_t{2}));
  auto v = engine_->AddVertex("n", props);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(engine_->RemoveVertexProperty(*v, "a").ok());
  auto rec = engine_->GetVertex(*session_, *v);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->properties.size(), 1u);
  EXPECT_EQ(FindProperty(rec->properties, "a"), nullptr);
  EXPECT_NE(FindProperty(rec->properties, "b"), nullptr);
  // Removing again fails.
  EXPECT_FALSE(engine_->RemoveVertexProperty(*v, "a").ok());

  auto b2 = engine_->AddVertex("n", {});
  auto e = engine_->AddEdge(*v, *b2, "l", props);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(engine_->RemoveEdgeProperty(*e, "b").ok());
  auto erec = engine_->GetEdge(*session_, *e);
  ASSERT_TRUE(erec.ok());
  EXPECT_EQ(erec->properties.size(), 1u);
  EXPECT_EQ(FindProperty(erec->properties, "b"), nullptr);
}

TEST_P(EngineTest, RemoveEdgeLeavesVertices) {
  auto a = engine_->AddVertex("n", {});
  auto b = engine_->AddVertex("n", {});
  auto e = engine_->AddEdge(*a, *b, "l", {});
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(engine_->RemoveEdge(*e).ok());
  EXPECT_FALSE(engine_->GetEdge(*session_, *e).ok());
  EXPECT_TRUE(engine_->GetVertex(*session_, *a).ok());
  EXPECT_TRUE(engine_->GetVertex(*session_, *b).ok());
  auto edges = engine_->EdgesOf(*session_, *a, Direction::kBoth, nullptr, never_);
  ASSERT_TRUE(edges.ok());
  EXPECT_TRUE(edges->empty());
  // Double remove fails.
  EXPECT_FALSE(engine_->RemoveEdge(*e).ok());
}

TEST_P(EngineTest, DirectionalTraversal) {
  auto a = engine_->AddVertex("n", {});
  auto b = engine_->AddVertex("n", {});
  auto c = engine_->AddVertex("n", {});
  ASSERT_TRUE(engine_->AddEdge(*a, *b, "x", {}).ok());
  ASSERT_TRUE(engine_->AddEdge(*c, *a, "y", {}).ok());

  auto out = engine_->NeighborsOf(*session_, *a, Direction::kOut, nullptr, never_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, std::vector<VertexId>{*b});

  auto in = engine_->NeighborsOf(*session_, *a, Direction::kIn, nullptr, never_);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(*in, std::vector<VertexId>{*c});

  auto both = engine_->NeighborsOf(*session_, *a, Direction::kBoth, nullptr, never_);
  ASSERT_TRUE(both.ok());
  std::set<VertexId> both_set(both->begin(), both->end());
  EXPECT_EQ(both_set, (std::set<VertexId>{*b, *c}));

  EXPECT_EQ(engine_->DegreeOf(*session_, *a, Direction::kOut, never_).value(), 1u);
  EXPECT_EQ(engine_->DegreeOf(*session_, *a, Direction::kIn, never_).value(), 1u);
  EXPECT_EQ(engine_->DegreeOf(*session_, *a, Direction::kBoth, never_).value(), 2u);
}

TEST_P(EngineTest, LabelFilteredTraversal) {
  auto a = engine_->AddVertex("n", {});
  auto b = engine_->AddVertex("n", {});
  auto c = engine_->AddVertex("n", {});
  ASSERT_TRUE(engine_->AddEdge(*a, *b, "red", {}).ok());
  ASSERT_TRUE(engine_->AddEdge(*a, *c, "blue", {}).ok());

  std::string red = "red";
  auto red_out = engine_->NeighborsOf(*session_, *a, Direction::kBoth, &red, never_);
  ASSERT_TRUE(red_out.ok());
  EXPECT_EQ(*red_out, std::vector<VertexId>{*b});

  std::string missing = "nope";
  auto none = engine_->NeighborsOf(*session_, *a, Direction::kBoth, &missing, never_);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_P(EngineTest, SelfLoopCountsOnceInBoth) {
  auto a = engine_->AddVertex("n", {});
  auto e = engine_->AddEdge(*a, *a, "self", {});
  ASSERT_TRUE(e.ok()) << e.status();
  auto both = engine_->EdgesOf(*session_, *a, Direction::kBoth, nullptr, never_);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->size(), 1u);
  auto nbrs = engine_->NeighborsOf(*session_, *a, Direction::kBoth, nullptr, never_);
  ASSERT_TRUE(nbrs.ok());
  EXPECT_EQ(*nbrs, std::vector<VertexId>{*a});
}

TEST_P(EngineTest, ParallelEdgesAreDistinct) {
  auto a = engine_->AddVertex("n", {});
  auto b = engine_->AddVertex("n", {});
  auto e1 = engine_->AddEdge(*a, *b, "l", {});
  auto e2 = engine_->AddEdge(*a, *b, "l", {});
  ASSERT_TRUE(e1.ok() && e2.ok());
  EXPECT_NE(*e1, *e2);
  auto edges = engine_->EdgesOf(*session_, *a, Direction::kOut, nullptr, never_);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->size(), 2u);
  EXPECT_EQ(engine_->CountEdges(*session_, never_).value(), 2u);
}

TEST_P(EngineTest, DistinctEdgeLabels) {
  auto a = engine_->AddVertex("n", {});
  auto b = engine_->AddVertex("n", {});
  ASSERT_TRUE(engine_->AddEdge(*a, *b, "z", {}).ok());
  ASSERT_TRUE(engine_->AddEdge(*b, *a, "a", {}).ok());
  ASSERT_TRUE(engine_->AddEdge(*a, *b, "z", {}).ok());
  auto labels = engine_->DistinctEdgeLabels(*session_, never_);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(*labels, (std::vector<std::string>{"a", "z"}));
}

TEST_P(EngineTest, FindByPropertyAndLabel) {
  PropertyMap red;
  red.emplace_back("color", PropertyValue("red"));
  PropertyMap blue;
  blue.emplace_back("color", PropertyValue("blue"));
  auto a = engine_->AddVertex("n", red);
  auto b = engine_->AddVertex("n", blue);
  auto c = engine_->AddVertex("n", red);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(engine_->AddEdge(*a, *b, "l1", red).ok());
  ASSERT_TRUE(engine_->AddEdge(*b, *c, "l2", blue).ok());

  auto found = engine_->FindVerticesByProperty(*session_, "color", PropertyValue("red"),
                                               never_);
  ASSERT_TRUE(found.ok());
  std::set<VertexId> found_set(found->begin(), found->end());
  EXPECT_EQ(found_set, (std::set<VertexId>{*a, *c}));

  auto edges =
      engine_->FindEdgesByProperty(*session_, "color", PropertyValue("blue"), never_);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->size(), 1u);

  auto by_label = engine_->FindEdgesByLabel(*session_, "l1", never_);
  ASSERT_TRUE(by_label.ok());
  EXPECT_EQ(by_label->size(), 1u);

  auto none = engine_->FindVerticesByProperty(*session_, "color", PropertyValue("green"),
                                              never_);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_P(EngineTest, PropertyIndexPreservesResults) {
  for (int i = 0; i < 50; ++i) {
    PropertyMap props;
    props.emplace_back("bucket", PropertyValue(static_cast<int64_t>(i % 7)));
    ASSERT_TRUE(engine_->AddVertex("n", props).ok());
  }
  auto before = engine_->FindVerticesByProperty(*session_, 
      "bucket", PropertyValue(int64_t{3}), never_);
  ASSERT_TRUE(before.ok());

  Status s = engine_->CreateVertexPropertyIndex("bucket");
  if (s.IsUnimplemented()) {
    GTEST_SKIP() << GetParam() << " offers no user attribute indexes";
  }
  ASSERT_TRUE(s.ok()) << s;
  auto after = engine_->FindVerticesByProperty(*session_, 
      "bucket", PropertyValue(int64_t{3}), never_);
  ASSERT_TRUE(after.ok());
  std::set<VertexId> b(before->begin(), before->end());
  std::set<VertexId> a(after->begin(), after->end());
  EXPECT_EQ(a, b);

  // Index must track subsequent mutations.
  PropertyMap props;
  props.emplace_back("bucket", PropertyValue(int64_t{3}));
  auto extra = engine_->AddVertex("n", props);
  ASSERT_TRUE(extra.ok());
  auto updated = engine_->FindVerticesByProperty(*session_, 
      "bucket", PropertyValue(int64_t{3}), never_);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->size(), b.size() + 1);
}

TEST_P(EngineTest, ScansVisitEverything) {
  constexpr int kV = 30, kE = 45;
  std::vector<VertexId> vertices;
  for (int i = 0; i < kV; ++i) {
    auto v = engine_->AddVertex("n", {});
    ASSERT_TRUE(v.ok());
    vertices.push_back(*v);
  }
  std::set<EdgeId> edges;
  for (int i = 0; i < kE; ++i) {
    auto e = engine_->AddEdge(vertices[i % kV], vertices[(i * 7 + 1) % kV],
                              i % 2 ? "odd" : "even", {});
    ASSERT_TRUE(e.ok());
    edges.insert(*e);
  }
  std::set<VertexId> seen_v;
  ASSERT_TRUE(engine_->ScanVertices(*session_, never_, [&](VertexId id) {
    seen_v.insert(id);
    return true;
  }).ok());
  EXPECT_EQ(seen_v.size(), static_cast<size_t>(kV));

  std::set<EdgeId> seen_e;
  ASSERT_TRUE(engine_->ScanEdges(*session_, never_, [&](const EdgeEnds& e) {
    seen_e.insert(e.id);
    return true;
  }).ok());
  EXPECT_EQ(seen_e, edges);
}

TEST_P(EngineTest, ScanCancellation) {
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(engine_->AddVertex("n", {}).ok());
  }
  CancelToken cancelled;
  cancelled.Cancel();
  uint64_t visited = 0;
  Status s = engine_->ScanVertices(*session_, cancelled, [&](VertexId) {
    ++visited;
    return true;
  });
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s;
  EXPECT_EQ(visited, 0u);
}

TEST_P(EngineTest, CheckpointWritesFiles) {
  auto a = engine_->AddVertex("n", {{{"k", PropertyValue("v")}}});
  auto b = engine_->AddVertex("n", {});
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(engine_->AddEdge(*a, *b, "l", {}).ok());

  std::string dir = ::testing::TempDir() + "/gdbmicro_ckpt_" + GetParam();
  std::filesystem::remove_all(dir);
  Status s = engine_->Checkpoint(dir);
  ASSERT_TRUE(s.ok()) << s;
  uint64_t files = 0, bytes = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      ++files;
      bytes += entry.file_size();
    }
  }
  EXPECT_GT(files, 0u);
  EXPECT_GT(bytes, 0u);
  std::filesystem::remove_all(dir);
}

TEST_P(EngineTest, MemoryBytesIsPositiveAfterLoad) {
  auto a = engine_->AddVertex("n", {});
  auto b = engine_->AddVertex("n", {});
  ASSERT_TRUE(engine_->AddEdge(*a, *b, "l", {}).ok());
  EXPECT_GT(engine_->MemoryBytes(), 0u);
}

// --- adjacency visitors ---------------------------------------------------

// Builds the visitor-stress fixture: self-loop, parallel edges, two edge
// labels, and both directions populated. Returns the vertex ids.
std::vector<VertexId> BuildVisitorGraph(GraphEngine* engine) {
  std::vector<VertexId> v;
  for (int i = 0; i < 4; ++i) {
    auto id = engine->AddVertex("n", {});
    EXPECT_TRUE(id.ok());
    v.push_back(*id);
  }
  EXPECT_TRUE(engine->AddEdge(v[0], v[1], "red", {}).ok());
  EXPECT_TRUE(engine->AddEdge(v[0], v[1], "red", {}).ok());  // parallel
  EXPECT_TRUE(engine->AddEdge(v[0], v[2], "blue", {}).ok());
  EXPECT_TRUE(engine->AddEdge(v[2], v[0], "red", {}).ok());
  EXPECT_TRUE(engine->AddEdge(v[3], v[0], "blue", {}).ok());
  EXPECT_TRUE(engine->AddEdge(v[0], v[0], "red", {}).ok());  // self-loop
  return v;
}

TEST_P(EngineTest, VisitorMatchesVectorWrappers) {
  std::vector<VertexId> v = BuildVisitorGraph(engine_.get());
  std::string red = "red", missing = "nope";
  const std::string* filters[] = {nullptr, &red, &missing};
  for (VertexId probe : v) {
    for (Direction dir :
         {Direction::kOut, Direction::kIn, Direction::kBoth}) {
      for (const std::string* label : filters) {
        auto edges = engine_->EdgesOf(*session_, probe, dir, label, never_);
        ASSERT_TRUE(edges.ok()) << edges.status();
        std::multiset<EdgeId> streamed_edges;
        ASSERT_TRUE(engine_
                        ->ForEachEdgeOf(*session_, probe, dir, label, never_,
                                        [&](EdgeId e) {
                                          streamed_edges.insert(e);
                                          return true;
                                        })
                        .ok());
        EXPECT_EQ(streamed_edges,
                  std::multiset<EdgeId>(edges->begin(), edges->end()))
            << "dir " << static_cast<int>(dir);

        auto nbrs = engine_->NeighborsOf(*session_, probe, dir, label, never_);
        ASSERT_TRUE(nbrs.ok()) << nbrs.status();
        std::multiset<VertexId> streamed_nbrs;
        ASSERT_TRUE(engine_
                        ->ForEachNeighbor(*session_, probe, dir, label, never_,
                                          [&](VertexId n) {
                                            streamed_nbrs.insert(n);
                                            return true;
                                          })
                        .ok());
        EXPECT_EQ(streamed_nbrs,
                  std::multiset<VertexId>(nbrs->begin(), nbrs->end()))
            << "dir " << static_cast<int>(dir);
      }
    }
  }
}

TEST_P(EngineTest, VisitorEarlyStopVisitsExactlyOne) {
  std::vector<VertexId> v = BuildVisitorGraph(engine_.get());
  uint64_t visits = 0;
  Status s = engine_->ForEachEdgeOf(*session_, v[0], Direction::kBoth, nullptr, never_,
                                    [&](EdgeId) {
                                      ++visits;
                                      return false;  // stop immediately
                                    });
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_EQ(visits, 1u);

  visits = 0;
  s = engine_->ForEachNeighbor(*session_, v[0], Direction::kBoth, nullptr, never_,
                               [&](VertexId) {
                                 ++visits;
                                 return false;
                               });
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_EQ(visits, 1u);
}

TEST_P(EngineTest, VisitorCancellationMidVisit) {
  std::vector<VertexId> v = BuildVisitorGraph(engine_.get());
  // v0 has six incident edges; cancelling inside the first visit must
  // stop the walk before a second one.
  CancelToken token;
  uint64_t visits = 0;
  Status s = engine_->ForEachEdgeOf(*session_, v[0], Direction::kBoth, nullptr, token,
                                    [&](EdgeId) {
                                      ++visits;
                                      token.Cancel();
                                      return true;  // walk decides to stop
                                    });
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s;
  EXPECT_EQ(visits, 1u);

  // An already-cancelled token visits nothing.
  CancelToken cancelled;
  cancelled.Cancel();
  visits = 0;
  s = engine_->ForEachNeighbor(*session_, v[0], Direction::kBoth, nullptr, cancelled,
                               [&](VertexId) {
                                 ++visits;
                                 return true;
                               });
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s;
  EXPECT_EQ(visits, 0u);
}

TEST_P(EngineTest, VisitorUnknownLabelVisitsNothing) {
  std::vector<VertexId> v = BuildVisitorGraph(engine_.get());
  std::string missing = "no-such-label";
  uint64_t visits = 0;
  Status s = engine_->ForEachEdgeOf(*session_, v[0], Direction::kBoth, &missing, never_,
                                    [&](EdgeId) {
                                      ++visits;
                                      return true;
                                    });
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_EQ(visits, 0u);
}

// --- BFS / shortest path over the visitor rewrite -------------------------

// Reference adjacency built independently of the visitors, via ScanEdges.
std::unordered_map<VertexId, std::vector<VertexId>> ReferenceAdjacency(
    GraphEngine* engine, QuerySession* session) {
  std::unordered_map<VertexId, std::vector<VertexId>> adj;
  CancelToken never;
  EXPECT_TRUE(engine
                  ->ScanEdges(*session, never,
                              [&](const EdgeEnds& e) {
                                adj[e.src].push_back(e.dst);
                                if (e.dst != e.src) {
                                  adj[e.dst].push_back(e.src);
                                }
                                return true;
                              })
                  .ok());
  return adj;
}

TEST_P(EngineTest, BfsMatchesReferenceExpansion) {
  datasets::GenOptions gen;
  gen.scale = 0.002;
  GraphData data = datasets::GenerateLdbc(gen);
  auto mapping = engine_->BulkLoad(data);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  auto adj = ReferenceAdjacency(engine_.get(), session_.get());

  for (uint64_t idx : {uint64_t{0}, uint64_t{7}, uint64_t{23}}) {
    ASSERT_LT(idx, mapping->vertex_ids.size());
    VertexId start = mapping->vertex_ids[idx];
    for (int depth : {1, 2, 4}) {
      auto got = query::BreadthFirst(*engine_, *session_, start, depth, std::nullopt,
                                     never_);
      ASSERT_TRUE(got.ok()) << got.status();
      // Reference BFS over the scan-built adjacency.
      std::unordered_set<VertexId> stored{start};
      std::vector<VertexId> frontier{start}, expect;
      int reached = 0;
      for (int d = 0; d < depth && !frontier.empty(); ++d) {
        std::vector<VertexId> next;
        for (VertexId v : frontier) {
          auto it = adj.find(v);
          if (it == adj.end()) continue;
          for (VertexId n : it->second) {
            if (stored.insert(n).second) {
              next.push_back(n);
              expect.push_back(n);
            }
          }
        }
        if (!next.empty()) reached = d + 1;
        frontier = std::move(next);
      }
      EXPECT_EQ(std::set<VertexId>(got->visited.begin(), got->visited.end()),
                std::set<VertexId>(expect.begin(), expect.end()))
          << "start " << idx << " depth " << depth;
      EXPECT_EQ(got->depth_reached, reached);
      // Gremlin store(vs) semantics: the start is never in `visited`.
      EXPECT_EQ(std::count(got->visited.begin(), got->visited.end(), start),
                0);
    }
  }
}

TEST_P(EngineTest, ShortestPathMatchesReferenceDistance) {
  datasets::GenOptions gen;
  gen.scale = 0.002;
  GraphData data = datasets::GenerateLdbc(gen);
  auto mapping = engine_->BulkLoad(data);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  auto adj = ReferenceAdjacency(engine_.get(), session_.get());

  auto ref_distance = [&](VertexId src, VertexId dst) -> int {
    if (src == dst) return 0;
    std::unordered_map<VertexId, int> dist{{src, 0}};
    std::queue<VertexId> q;
    q.push(src);
    while (!q.empty()) {
      VertexId v = q.front();
      q.pop();
      auto it = adj.find(v);
      if (it == adj.end()) continue;
      for (VertexId n : it->second) {
        if (dist.emplace(n, dist[v] + 1).second) {
          if (n == dst) return dist[v] + 1;
          q.push(n);
        }
      }
    }
    return -1;  // unreachable
  };

  const int kMaxDepth = 16;
  for (auto [a, b] : {std::pair<uint64_t, uint64_t>{0, 5},
                      std::pair<uint64_t, uint64_t>{3, 41},
                      std::pair<uint64_t, uint64_t>{11, 2}}) {
    ASSERT_LT(a, mapping->vertex_ids.size());
    ASSERT_LT(b, mapping->vertex_ids.size());
    VertexId src = mapping->vertex_ids[a], dst = mapping->vertex_ids[b];
    auto got =
        query::ShortestPath(*engine_, *session_, src, dst, std::nullopt, kMaxDepth,
                            never_);
    ASSERT_TRUE(got.ok()) << got.status();
    int want = ref_distance(src, dst);
    if (want < 0 || want > kMaxDepth) {
      EXPECT_FALSE(got->found);
    } else {
      ASSERT_TRUE(got->found) << a << "->" << b;
      EXPECT_EQ(static_cast<int>(got->path.size()) - 1, want);
      EXPECT_EQ(got->path.front(), src);
      EXPECT_EQ(got->path.back(), dst);
    }
  }
}

// --- randomized cross-engine consistency ---------------------------------

TEST_P(EngineTest, BulkLoadMatchesReferenceAdjacency) {
  datasets::GenOptions gen;
  gen.scale = 0.002;  // tiny
  GraphData data = datasets::GenerateLdbc(gen);
  auto mapping = engine_->BulkLoad(data);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  ASSERT_EQ(mapping->vertex_ids.size(), data.vertices.size());
  ASSERT_EQ(mapping->edge_ids.size(), data.edges.size());

  EXPECT_EQ(engine_->CountVertices(*session_, never_).value(), data.vertices.size());
  EXPECT_EQ(engine_->CountEdges(*session_, never_).value(), data.edges.size());

  // Reference adjacency from the dataset.
  std::map<uint64_t, std::multiset<uint64_t>> ref_out, ref_in;
  for (const auto& e : data.edges) {
    ref_out[e.src].insert(e.dst);
    ref_in[e.dst].insert(e.src);
  }
  // Check a deterministic sample of vertices.
  for (uint64_t idx = 0; idx < data.vertices.size(); idx += 17) {
    VertexId id = mapping->vertex_ids[idx];
    auto out = engine_->NeighborsOf(*session_, id, Direction::kOut, nullptr, never_);
    ASSERT_TRUE(out.ok()) << out.status();
    std::multiset<uint64_t> got;
    for (VertexId n : *out) {
      // Translate back to dataset indexes via reverse lookup.
      auto it = std::find(mapping->vertex_ids.begin(),
                          mapping->vertex_ids.end(), n);
      ASSERT_NE(it, mapping->vertex_ids.end());
      got.insert(static_cast<uint64_t>(it - mapping->vertex_ids.begin()));
    }
    EXPECT_EQ(got, ref_out[idx]) << "vertex index " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineTest,
    ::testing::Values("arango", "blaze", "neo19", "neo30", "orient",
                      "sparksee", "sqlg", "titan05", "titan10"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace gdbmicro
