// Tests for the graph model (PropertyValue, PropertyMap, GraphData) and
// the GraphSON reader/writer.

#include <gtest/gtest.h>

#include "src/graph/graph_data.h"
#include "src/graph/types.h"
#include "src/gson/graphson.h"

namespace gdbmicro {
namespace {

TEST(PropertyValueTest, TypePredicatesAndAccessors) {
  EXPECT_TRUE(PropertyValue().is_null());
  EXPECT_TRUE(PropertyValue(true).is_bool());
  EXPECT_TRUE(PropertyValue(int64_t{4}).is_int());
  EXPECT_TRUE(PropertyValue(2.5).is_double());
  EXPECT_TRUE(PropertyValue("s").is_string());
  EXPECT_EQ(PropertyValue(int64_t{-9}).ToString(), "-9");
  EXPECT_EQ(PropertyValue("txt").ToString(), "txt");
}

TEST(PropertyValueTest, OrderingIsDeterministicAcrossTypes) {
  // Type tag dominates: null < bool < int < double < string.
  PropertyValue null_v;
  PropertyValue bool_v(true);
  PropertyValue int_v(int64_t{5});
  PropertyValue dbl_v(1.5);
  PropertyValue str_v("a");
  EXPECT_TRUE(null_v < bool_v);
  EXPECT_TRUE(bool_v < int_v);
  EXPECT_TRUE(int_v < dbl_v);
  EXPECT_TRUE(dbl_v < str_v);
  EXPECT_TRUE(PropertyValue(int64_t{1}) < PropertyValue(int64_t{2}));
}

TEST(PropertyValueTest, EncodeDecodeRoundTrip) {
  std::vector<PropertyValue> values = {
      PropertyValue(),         PropertyValue(true),
      PropertyValue(false),    PropertyValue(int64_t{0}),
      PropertyValue(int64_t{-123456789}), PropertyValue(3.14159),
      PropertyValue(""),       PropertyValue(std::string(1000, 'x'))};
  for (const PropertyValue& v : values) {
    std::string buf;
    v.EncodeTo(&buf);
    size_t pos = 0;
    auto round = PropertyValue::DecodeFrom(buf, &pos);
    ASSERT_TRUE(round.ok());
    EXPECT_TRUE(*round == v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(PropertyValueTest, JsonRoundTrip) {
  std::vector<PropertyValue> values = {PropertyValue(true),
                                       PropertyValue(int64_t{7}),
                                       PropertyValue(0.5), PropertyValue("v")};
  for (const PropertyValue& v : values) {
    EXPECT_TRUE(PropertyValue::FromJson(v.ToJson()) == v);
  }
}

TEST(PropertyValueTest, HashDiffersByValue) {
  EXPECT_NE(PropertyValue(int64_t{1}).Hash(), PropertyValue(int64_t{2}).Hash());
  EXPECT_NE(PropertyValue("a").Hash(), PropertyValue("b").Hash());
  EXPECT_EQ(PropertyValue("a").Hash(), PropertyValue("a").Hash());
}

TEST(PropertyMapTest, SetFindErase) {
  PropertyMap props;
  EXPECT_TRUE(SetProperty(&props, "k", PropertyValue(int64_t{1})));
  EXPECT_FALSE(SetProperty(&props, "k", PropertyValue(int64_t{2})));
  ASSERT_NE(FindProperty(props, "k"), nullptr);
  EXPECT_EQ(FindProperty(props, "k")->int_value(), 2);
  EXPECT_TRUE(EraseProperty(&props, "k"));
  EXPECT_FALSE(EraseProperty(&props, "k"));
  EXPECT_EQ(FindProperty(props, "k"), nullptr);
}

TEST(PropertyMapTest, EncodeDecodeRoundTrip) {
  PropertyMap props;
  props.emplace_back("a", PropertyValue(int64_t{1}));
  props.emplace_back("b", PropertyValue("text"));
  props.emplace_back("c", PropertyValue(true));
  std::string buf;
  EncodePropertyMap(props, &buf);
  size_t pos = 0;
  auto round = DecodePropertyMap(buf, &pos);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(*round, props);
}

TEST(GraphDataTest, ValidateCatchesDanglingEdges) {
  GraphData data;
  data.vertices.push_back({"n", {}});
  data.edges.push_back({0, 1, "l", {}});
  Status s = data.Validate();
  EXPECT_FALSE(s.ok());
  data.vertices.push_back({"n", {}});
  EXPECT_TRUE(data.Validate().ok());
}

TEST(GraphDataTest, EstimatedJsonBytesScalesWithContent) {
  GraphData small;
  small.vertices.push_back({"n", {}});
  GraphData big;
  for (int i = 0; i < 100; ++i) {
    big.vertices.push_back(
        {"n", {{"text", PropertyValue(std::string(100, 'x'))}}});
  }
  EXPECT_GT(big.EstimatedJsonBytes(), small.EstimatedJsonBytes() + 10000);
}

GraphData SampleGraph() {
  GraphData data;
  data.name = "sample";
  data.vertices.push_back(
      {"person", {{"name", PropertyValue("ada")},
                  {"age", PropertyValue(int64_t{36})}}});
  data.vertices.push_back({"person", {{"name", PropertyValue("bob")}}});
  data.vertices.push_back({"city", {{"pop", PropertyValue(1.5)}}});
  data.edges.push_back(
      {0, 1, "knows", {{"since", PropertyValue(int64_t{1999})}}});
  data.edges.push_back({0, 2, "livesIn", {}});
  data.edges.push_back({1, 1, "self", {{"flag", PropertyValue(true)}}});
  return data;
}

TEST(GraphSONTest, RoundTrip) {
  GraphData data = SampleGraph();
  std::string text = WriteGraphSON(data);
  auto round = ReadGraphSON(text);
  ASSERT_TRUE(round.ok()) << round.status();
  ASSERT_EQ(round->vertices.size(), data.vertices.size());
  ASSERT_EQ(round->edges.size(), data.edges.size());
  for (size_t i = 0; i < data.vertices.size(); ++i) {
    EXPECT_EQ(round->vertices[i].label, data.vertices[i].label);
    EXPECT_EQ(round->vertices[i].properties, data.vertices[i].properties);
  }
  for (size_t i = 0; i < data.edges.size(); ++i) {
    EXPECT_EQ(round->edges[i].src, data.edges[i].src);
    EXPECT_EQ(round->edges[i].dst, data.edges[i].dst);
    EXPECT_EQ(round->edges[i].label, data.edges[i].label);
    EXPECT_EQ(round->edges[i].properties, data.edges[i].properties);
  }
}

TEST(GraphSONTest, FileRoundTrip) {
  GraphData data = SampleGraph();
  std::string path = ::testing::TempDir() + "/gdbmicro_sample.graphson";
  ASSERT_TRUE(WriteGraphSONFile(data, path).ok());
  auto round = ReadGraphSONFile(path);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->vertices.size(), data.vertices.size());
}

TEST(GraphSONTest, AcceptsSparseVertexIds) {
  const char* text = R"({"mode":"NORMAL",
    "vertices":[{"_id":100,"_label":"a"},{"_id":7,"_label":"b"}],
    "edges":[{"_id":0,"_outV":100,"_inV":7,"_label":"l"}]})";
  auto data = ReadGraphSON(text);
  ASSERT_TRUE(data.ok()) << data.status();
  ASSERT_EQ(data->vertices.size(), 2u);
  EXPECT_EQ(data->edges[0].src, 0u);  // remapped to dense indexes
  EXPECT_EQ(data->edges[0].dst, 1u);
}

TEST(GraphSONTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ReadGraphSON("not json").ok());
  EXPECT_FALSE(ReadGraphSON("{}").ok());  // missing vertices
  EXPECT_FALSE(
      ReadGraphSON(R"({"vertices":[{"_label":"x"}],"edges":[]})").ok());
  EXPECT_FALSE(ReadGraphSON(
                   R"({"vertices":[{"_id":1}],
                       "edges":[{"_outV":1,"_inV":2,"_label":"l"}]})")
                   .ok());  // dangling edge
  EXPECT_FALSE(ReadGraphSON(
                   R"({"vertices":[{"_id":1},{"_id":1}],"edges":[]})")
                   .ok());  // duplicate id
}

}  // namespace
}  // namespace gdbmicro
