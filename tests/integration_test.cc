// Integration tests across module boundaries: GraphSON file -> engine ->
// queries; generated dataset -> GraphSON round trip -> identical engine
// behaviour; suite runner over a GraphSON-sourced dataset; failure
// injection (cancellation mid-traversal, malformed input, unknown
// engines/datasets).

#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/queries.h"
#include "src/core/runner.h"
#include "src/datasets/generators.h"
#include "src/graph/registry.h"
#include "src/gson/graphson.h"
#include "src/query/algorithms.h"

namespace gdbmicro {
namespace {

TEST(IntegrationTest, GraphsonFileToEngineToQueries) {
  // Generate -> write GraphSON -> read back -> load -> query.
  datasets::GenOptions gen;
  gen.scale = 0.005;
  GraphData original = datasets::GenerateLdbc(gen);
  std::string path = ::testing::TempDir() + "/gdbmicro_integration.graphson";
  ASSERT_TRUE(WriteGraphSONFile(original, path).ok());

  auto reloaded = ReadGraphSONFile(path);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->VertexCount(), original.VertexCount());
  ASSERT_EQ(reloaded->EdgeCount(), original.EdgeCount());

  auto engine = OpenEngine("neo19", EngineOptions{});
  ASSERT_TRUE(engine.ok());
  auto mapping = (*engine)->BulkLoad(*reloaded);
  ASSERT_TRUE(mapping.ok());
  CancelToken never;
  auto session = (*engine)->CreateSession();
  EXPECT_EQ((*engine)->CountVertices(*session, never).value(),
            original.VertexCount());
  EXPECT_EQ((*engine)->CountEdges(*session, never).value(),
            original.EdgeCount());
  std::filesystem::remove(path);
}

TEST(IntegrationTest, GraphsonRoundTripPreservesQueryResults) {
  datasets::GenOptions gen;
  gen.scale = 0.004;
  GraphData original = datasets::GenerateYeast(gen);
  auto round = ReadGraphSON(WriteGraphSON(original));
  ASSERT_TRUE(round.ok());

  // Same engine, both datasets: identical observable results.
  CancelToken never;
  auto e1 = OpenEngine("sparksee", EngineOptions{});
  auto e2 = OpenEngine("sparksee", EngineOptions{});
  ASSERT_TRUE(e1.ok() && e2.ok());
  auto m1 = (*e1)->BulkLoad(original);
  auto m2 = (*e2)->BulkLoad(*round);
  ASSERT_TRUE(m1.ok() && m2.ok());
  auto s1 = (*e1)->CreateSession();
  auto s2 = (*e2)->CreateSession();

  EXPECT_EQ((*e1)->DistinctEdgeLabels(*s1, never).value(),
            (*e2)->DistinctEdgeLabels(*s2, never).value());
  for (uint64_t idx = 0; idx < original.vertices.size(); idx += 131) {
    auto n1 = (*e1)->NeighborsOf(*s1, m1->vertex_ids[idx], Direction::kBoth,
                                 nullptr, never);
    auto n2 = (*e2)->NeighborsOf(*s2, m2->vertex_ids[idx], Direction::kBoth,
                                 nullptr, never);
    ASSERT_TRUE(n1.ok() && n2.ok());
    EXPECT_EQ(n1->size(), n2->size()) << idx;
  }
}

TEST(IntegrationTest, RunnerOverAllDatasets) {
  // Every generated dataset loads and answers a read probe on two
  // architecturally distant engines.
  core::RunnerOptions options;
  options.enable_cost_model = false;
  options.run_batch = false;
  options.deadline = std::chrono::seconds(30);
  core::Runner runner(options);
  datasets::GenOptions gen;
  gen.scale = 0.002;
  auto specs = core::QueriesByNumber({8, 9, 14, 23});
  for (const std::string& name : datasets::AllDatasetNames()) {
    auto data = datasets::GenerateByName(name, gen);
    ASSERT_TRUE(data.ok()) << name;
    for (const std::string& engine : {"neo19", "sqlg"}) {
      auto results = runner.RunEngine(engine, *data, specs);
      ASSERT_TRUE(results.ok()) << name << "/" << engine;
      for (const auto& m : *results) {
        EXPECT_TRUE(m.status.ok()) << name << "/" << engine << "/" << m.query;
      }
    }
  }
}

TEST(IntegrationTest, CancellationInterruptsDeepTraversal) {
  datasets::GenOptions gen;
  gen.scale = 0.01;
  GraphData data = datasets::GenerateLdbc(gen);  // one dense component
  auto engine = OpenEngine("neo19", EngineOptions{});
  ASSERT_TRUE(engine.ok());
  auto mapping = (*engine)->BulkLoad(data);
  ASSERT_TRUE(mapping.ok());

  CancelToken cancelled;
  cancelled.Cancel();
  auto session = (*engine)->CreateSession();
  auto bfs = query::BreadthFirst(**engine, *session, mapping->vertex_ids[0],
                                 10, std::nullopt, cancelled);
  EXPECT_FALSE(bfs.ok());
  EXPECT_TRUE(bfs.status().IsDeadlineExceeded());

  auto sp = query::ShortestPath(**engine, *session, mapping->vertex_ids[0],
                                mapping->vertex_ids[1], std::nullopt, 10,
                                cancelled);
  EXPECT_FALSE(sp.ok());
}

TEST(IntegrationTest, UnknownEngineAndDatasetAreCleanErrors) {
  EXPECT_FALSE(OpenEngine("nonexistent", EngineOptions{}).ok());
  EXPECT_FALSE(datasets::GenerateByName("nonexistent", {}).ok());
  core::RunnerOptions options;
  core::Runner runner(options);
  GraphData data = datasets::GenerateYeast({.scale = 0.001, .seed = 1});
  auto r = runner.Load("nonexistent", data);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(IntegrationTest, CostModelOnlyAffectsTiming) {
  // Same dataset, cost model on vs off: identical results, different time
  // for the charged engine.
  datasets::GenOptions gen;
  gen.scale = 0.002;
  GraphData data = datasets::GenerateMiCo(gen);

  CancelToken never;
  EngineOptions plain;
  EngineOptions charged;
  charged.enable_cost_model = true;

  auto e1 = OpenEngine("blaze", plain);
  auto e2 = OpenEngine("blaze", charged);
  ASSERT_TRUE(e1.ok() && e2.ok());
  auto m1 = (*e1)->BulkLoad(data);
  auto m2 = (*e2)->BulkLoad(data);
  ASSERT_TRUE(m1.ok() && m2.ok());
  auto s1 = (*e1)->CreateSession();
  auto s2 = (*e2)->CreateSession();
  EXPECT_EQ((*e1)->CountEdges(*s1, never).value(),
            (*e2)->CountEdges(*s2, never).value());
  auto n1 = (*e1)->NeighborsOf(*s1, m1->vertex_ids[3], Direction::kBoth,
                               nullptr, never);
  auto n2 = (*e2)->NeighborsOf(*s2, m2->vertex_ids[3], Direction::kBoth,
                               nullptr, never);
  ASSERT_TRUE(n1.ok() && n2.ok());
  EXPECT_EQ(n1->size(), n2->size());
}

TEST(IntegrationTest, EnginesAgreeOnMicrobenchmarkResults) {
  // The whole point of the methodology: every engine must return the SAME
  // answers for every read query; only timing differs. Run the read/
  // traversal catalog everywhere and compare item counts.
  datasets::GenOptions gen;
  gen.scale = 0.003;
  GraphData data = datasets::GenerateLdbc(gen);
  core::RunnerOptions options;
  options.enable_cost_model = false;
  options.run_batch = false;
  options.deadline = std::chrono::seconds(60);
  core::Runner runner(options);
  auto specs = core::QueriesByNumber(
      {8, 9, 10, 11, 12, 13, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33,
       34, 35});

  std::map<std::string, uint64_t> reference;
  std::string reference_engine;
  RegisterBuiltinEngines();
  for (const std::string& engine : EngineRegistry::Instance().Names()) {
    auto results = runner.RunEngine(engine, data, specs);
    ASSERT_TRUE(results.ok()) << engine;
    for (const auto& m : *results) {
      if (m.query == "Q1") continue;
      ASSERT_TRUE(m.status.ok()) << engine << "/" << m.query;
      auto [it, inserted] = reference.emplace(m.query, m.items);
      if (!inserted) {
        EXPECT_EQ(m.items, it->second)
            << engine << " disagrees with " << reference_engine << " on "
            << m.query;
      }
    }
    if (reference_engine.empty()) reference_engine = engine;
  }
}

}  // namespace
}  // namespace gdbmicro
