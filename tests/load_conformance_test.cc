// Load-path conformance: every engine's native bulk loader
// (BulkLoadMode::kNative — presized storage, interned strings, deferred
// secondary-structure construction) must produce a graph
// *indistinguishable* from element-by-element insertion
// (BulkLoadMode::kPerElement): same counts, labels, properties, adjacency
// multisets, and property-index answers. Engine ids may differ between
// the two instances, so every comparison maps back to dataset indexes
// through each instance's LoadMapping.
//
// Also covers the runner-side contract the native loaders rely on:
// Runner::Load validates the dataset once up front, so a dangling edge is
// rejected with the dataset diagnostic before any engine sees it.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/runner.h"
#include "src/datasets/generators.h"
#include "src/graph/registry.h"

namespace gdbmicro {
namespace {

// A small dataset exercising the cases the native loaders special-case:
// several vertex and edge labels, parallel edges, a self-loop, vertices
// with no edges, and string/int/double/bool properties on both element
// kinds.
GraphData HandcraftedData() {
  GraphData data;
  data.name = "handcrafted";
  auto vertex = [&](std::string label, PropertyMap props) {
    data.vertices.push_back({std::move(label), std::move(props)});
  };
  auto edge = [&](uint64_t src, uint64_t dst, std::string label,
                  PropertyMap props) {
    data.edges.push_back({src, dst, std::move(label), std::move(props)});
  };
  vertex("person", {{{"name", PropertyValue("ada")},
                     {"age", PropertyValue(int64_t{36})}}});
  vertex("person", {{{"name", PropertyValue("grace")},
                     {"age", PropertyValue(int64_t{85})}}});
  vertex("city", {{{"name", PropertyValue("london")},
                   {"rainy", PropertyValue(true)}}});
  vertex("city", {{{"name", PropertyValue("paris")}}});
  vertex("person", {});     // no properties
  vertex("islander", {});   // no edges at all
  edge(0, 1, "knows", {{{"since", PropertyValue(int64_t{1936})}}});
  edge(0, 1, "knows", {});  // parallel edge, same label
  edge(1, 0, "knows", {});  // reverse direction
  edge(0, 2, "lives_in", {{{"weight", PropertyValue(0.5)}}});
  edge(3, 0, "visited_by", {});
  edge(0, 0, "self", {});   // self-loop
  edge(4, 2, "lives_in", {});
  return data;
}

struct LoadedPair {
  std::unique_ptr<GraphEngine> native;
  std::unique_ptr<GraphEngine> per_element;
  std::unique_ptr<QuerySession> native_session;
  std::unique_ptr<QuerySession> per_element_session;
  LoadMapping native_map;
  LoadMapping per_element_map;
};

class LoadConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { RegisterBuiltinEngines(); }

  /// `honor_cost_env` lets the small handcrafted fixtures run under the
  /// GDBMICRO_COST_MODEL CI leg (exercising each loader's charge sites);
  /// the large generated dataset opts out — its per-element leg would
  /// spend tens of seconds busy-waiting on charges that cannot affect
  /// structural equivalence.
  LoadedPair LoadBoth(const GraphData& data, bool honor_cost_env = true) {
    LoadedPair pair;
    EngineOptions native_options;
    native_options.bulk_load_mode = BulkLoadMode::kNative;
    auto native = OpenEngine(GetParam(), native_options, honor_cost_env);
    EXPECT_TRUE(native.ok()) << native.status();
    pair.native = std::move(native).value();
    auto nm = pair.native->BulkLoad(data);
    EXPECT_TRUE(nm.ok()) << nm.status();
    pair.native_map = std::move(nm).value();
    EXPECT_TRUE(pair.native->load_stats().native);

    EngineOptions per_element_options;
    per_element_options.bulk_load_mode = BulkLoadMode::kPerElement;
    auto per_element =
        OpenEngine(GetParam(), per_element_options, honor_cost_env);
    EXPECT_TRUE(per_element.ok()) << per_element.status();
    pair.per_element = std::move(per_element).value();
    auto pm = pair.per_element->BulkLoad(data);
    EXPECT_TRUE(pm.ok()) << pm.status();
    pair.per_element_map = std::move(pm).value();
    EXPECT_FALSE(pair.per_element->load_stats().native);
    pair.native_session = pair.native->CreateSession();
    pair.per_element_session = pair.per_element->CreateSession();
    return pair;
  }

  CancelToken never_;
};

// Normalized (order-insensitive) view of a property map.
std::map<std::string, PropertyValue> Normalize(const PropertyMap& props) {
  return {props.begin(), props.end()};
}

// Maps engine vertex ids back to dataset indexes.
std::unordered_map<VertexId, uint64_t> ReverseOf(
    const std::vector<VertexId>& ids) {
  std::unordered_map<VertexId, uint64_t> reverse;
  reverse.reserve(ids.size());
  for (uint64_t i = 0; i < ids.size(); ++i) reverse.emplace(ids[i], i);
  return reverse;
}

void ExpectIndistinguishable(const GraphData& data, LoadedPair& pair,
                             const CancelToken& never) {
  ASSERT_EQ(pair.native_map.vertex_ids.size(), data.vertices.size());
  ASSERT_EQ(pair.native_map.edge_ids.size(), data.edges.size());
  ASSERT_EQ(pair.per_element_map.vertex_ids.size(), data.vertices.size());
  ASSERT_EQ(pair.per_element_map.edge_ids.size(), data.edges.size());

  // Counts.
  EXPECT_EQ(pair.native->CountVertices(*pair.native_session, never).value(),
            pair.per_element->CountVertices(*pair.per_element_session, never).value());
  EXPECT_EQ(pair.native->CountEdges(*pair.native_session, never).value(),
            pair.per_element->CountEdges(*pair.per_element_session, never).value());

  // Distinct edge labels (schema view).
  EXPECT_EQ(pair.native->DistinctEdgeLabels(*pair.native_session, never).value(),
            pair.per_element->DistinctEdgeLabels(*pair.per_element_session, never).value());

  // Per-element labels and properties.
  for (uint64_t i = 0; i < data.vertices.size(); ++i) {
    auto n = pair.native->GetVertex(*pair.native_session, pair.native_map.vertex_ids[i]);
    auto p = pair.per_element->GetVertex(*pair.per_element_session, pair.per_element_map.vertex_ids[i]);
    ASSERT_TRUE(n.ok()) << n.status();
    ASSERT_TRUE(p.ok()) << p.status();
    EXPECT_EQ(n->label, p->label) << "vertex " << i;
    EXPECT_EQ(Normalize(n->properties), Normalize(p->properties))
        << "vertex " << i;
  }
  auto vreverse_n = ReverseOf(pair.native_map.vertex_ids);
  auto vreverse_p = ReverseOf(pair.per_element_map.vertex_ids);
  for (uint64_t i = 0; i < data.edges.size(); ++i) {
    auto n = pair.native->GetEdge(*pair.native_session, pair.native_map.edge_ids[i]);
    auto p = pair.per_element->GetEdge(*pair.per_element_session, pair.per_element_map.edge_ids[i]);
    ASSERT_TRUE(n.ok()) << n.status();
    ASSERT_TRUE(p.ok()) << p.status();
    EXPECT_EQ(n->label, p->label) << "edge " << i;
    EXPECT_EQ(Normalize(n->properties), Normalize(p->properties))
        << "edge " << i;
    EXPECT_EQ(vreverse_n.at(n->src), vreverse_p.at(p->src)) << "edge " << i;
    EXPECT_EQ(vreverse_n.at(n->dst), vreverse_p.at(p->dst)) << "edge " << i;
  }

  // Adjacency multisets in every direction, mapped to dataset indexes.
  for (uint64_t i = 0; i < data.vertices.size(); ++i) {
    for (Direction dir :
         {Direction::kOut, Direction::kIn, Direction::kBoth}) {
      auto n = pair.native->NeighborsOf(*pair.native_session, pair.native_map.vertex_ids[i], dir,
                                        nullptr, never);
      auto p = pair.per_element->NeighborsOf(*pair.per_element_session, 
          pair.per_element_map.vertex_ids[i], dir, nullptr, never);
      ASSERT_TRUE(n.ok()) << n.status();
      ASSERT_TRUE(p.ok()) << p.status();
      std::multiset<uint64_t> nn, pp;
      for (VertexId v : *n) nn.insert(vreverse_n.at(v));
      for (VertexId v : *p) pp.insert(vreverse_p.at(v));
      EXPECT_EQ(nn, pp) << "vertex " << i << " dir "
                        << static_cast<int>(dir);
    }
  }
}

TEST_P(LoadConformanceTest, HandcraftedGraphIndistinguishable) {
  GraphData data = HandcraftedData();
  LoadedPair pair = LoadBoth(data);
  ExpectIndistinguishable(data, pair, never_);
}

TEST_P(LoadConformanceTest, GeneratedGraphIndistinguishable) {
  datasets::GenOptions gen;
  gen.scale = 0.002;
  GraphData data = datasets::GenerateLdbc(gen);
  LoadedPair pair = LoadBoth(data, /*honor_cost_env=*/false);
  ExpectIndistinguishable(data, pair, never_);
}

TEST_P(LoadConformanceTest, LabelFilteredAdjacencyMatches) {
  GraphData data = HandcraftedData();
  LoadedPair pair = LoadBoth(data);
  std::string knows = "knows", missing = "no-such-label";
  for (const std::string* label : {&knows, &missing}) {
    auto n = pair.native->EdgesOf(*pair.native_session, pair.native_map.vertex_ids[0],
                                  Direction::kBoth, label, never_);
    auto p = pair.per_element->EdgesOf(*pair.per_element_session, pair.per_element_map.vertex_ids[0],
                                       Direction::kBoth, label, never_);
    ASSERT_TRUE(n.ok()) << n.status();
    ASSERT_TRUE(p.ok()) << p.status();
    EXPECT_EQ(n->size(), p->size()) << "label " << *label;
  }
}

TEST_P(LoadConformanceTest, PropertyIndexAnswersMatch) {
  GraphData data = HandcraftedData();
  LoadedPair pair = LoadBoth(data);
  Status s = pair.native->CreateVertexPropertyIndex("name");
  if (s.IsUnimplemented()) {
    GTEST_SKIP() << GetParam() << " offers no user attribute indexes";
  }
  ASSERT_TRUE(s.ok()) << s;
  ASSERT_TRUE(pair.per_element->CreateVertexPropertyIndex("name").ok());

  auto vreverse_n = ReverseOf(pair.native_map.vertex_ids);
  auto vreverse_p = ReverseOf(pair.per_element_map.vertex_ids);
  for (const char* wanted : {"ada", "london", "nobody"}) {
    auto n = pair.native->FindVerticesByProperty(*pair.native_session, 
        "name", PropertyValue(wanted), never_);
    auto p = pair.per_element->FindVerticesByProperty(*pair.per_element_session, 
        "name", PropertyValue(wanted), never_);
    ASSERT_TRUE(n.ok()) << n.status();
    ASSERT_TRUE(p.ok()) << p.status();
    std::set<uint64_t> nn, pp;
    for (VertexId v : *n) nn.insert(vreverse_n.at(v));
    for (VertexId v : *p) pp.insert(vreverse_p.at(v));
    EXPECT_EQ(nn, pp) << "name=" << wanted;
  }
}

TEST_P(LoadConformanceTest, StatsReportThePass) {
  GraphData data = HandcraftedData();
  LoadedPair pair = LoadBoth(data);
  const BulkLoadStats& stats = pair.native->load_stats();
  EXPECT_EQ(stats.vertices, data.vertices.size());
  EXPECT_EQ(stats.edges, data.edges.size());
  EXPECT_EQ(stats.Elements(), data.vertices.size() + data.edges.size());
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GE(stats.element_millis, 0.0);
  EXPECT_GE(stats.index_build_millis, 0.0);
  // kPerElement interleaves index maintenance: no deferred-build phase.
  EXPECT_EQ(pair.per_element->load_stats().index_build_millis, 0.0);
}

// The native loader still behaves after the load: subsequent CRUD
// operations land on the deferred-built structures.
TEST_P(LoadConformanceTest, MutationsAfterNativeLoadWork) {
  GraphData data = HandcraftedData();
  LoadedPair pair = LoadBoth(data);
  GraphEngine& engine = *pair.native;
  QuerySession& session = *pair.native_session;
  const std::vector<VertexId>& ids = pair.native_map.vertex_ids;

  auto added = engine.AddVertex("person", {});
  ASSERT_TRUE(added.ok()) << added.status();
  auto e = engine.AddEdge(*added, ids[0], "knows", {});
  ASSERT_TRUE(e.ok()) << e.status();
  auto deg = engine.DegreeOf(session, *added, Direction::kBoth, never_);
  ASSERT_TRUE(deg.ok());
  EXPECT_EQ(*deg, 1u);

  // Removing a bulk-loaded vertex cascades through the deferred-built
  // adjacency (vertex 0 touches parallel edges, a self-loop, and three
  // labels).
  uint64_t before = engine.CountEdges(session, never_).value();
  ASSERT_TRUE(engine.RemoveVertex(ids[0]).ok());
  EXPECT_FALSE(engine.GetVertex(session, ids[0]).ok());
  // Vertex 0 is incident to 6 of the dataset's edges plus the one added
  // above.
  EXPECT_EQ(engine.CountEdges(session, never_).value(), before - 7);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, LoadConformanceTest,
    ::testing::Values("arango", "blaze", "neo19", "neo30", "orient",
                      "sparksee", "sqlg", "titan05", "titan10"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// The document engine's native loader emits JSON text directly; property
// maps with duplicate or _-reserved keys must still land exactly as the
// per-element encoder (Json::Set overwrite semantics) would store them.
TEST(DocishNativeLoadTest, ReservedAndDuplicateKeysMatchPerElement) {
  RegisterBuiltinEngines();
  GraphData data;
  data.name = "hostile-keys";
  data.vertices.push_back({"real",
                           {{{"_label", PropertyValue("fake")},
                             {"k", PropertyValue(int64_t{1})},
                             {"k", PropertyValue(int64_t{2})}}}});
  data.vertices.push_back({"n", {}});
  // (_from/_to collisions corrupt the endpoint in BOTH load modes — a
  // pre-existing Json::Set property of the document layout — so only the
  // string-valued _label collision is exercised here.)
  data.edges.push_back({0, 1, "l", {{{"_label", PropertyValue("fake")}}}});

  CancelToken never;
  std::unique_ptr<GraphEngine> engines[2];
  for (int i = 0; i < 2; ++i) {
    EngineOptions options;
    options.bulk_load_mode =
        i == 0 ? BulkLoadMode::kNative : BulkLoadMode::kPerElement;
    auto engine = OpenEngine("arango", options);
    ASSERT_TRUE(engine.ok());
    engines[i] = std::move(engine).value();
    ASSERT_TRUE(engines[i]->BulkLoad(data).ok());
  }
  std::unique_ptr<QuerySession> sessions[2] = {engines[0]->CreateSession(),
                                               engines[1]->CreateSession()};
  auto nv = engines[0]->GetVertex(*sessions[0], 0);
  auto pv = engines[1]->GetVertex(*sessions[1], 0);
  ASSERT_TRUE(nv.ok() && pv.ok());
  EXPECT_EQ(nv->label, pv->label);
  EXPECT_EQ(Normalize(nv->properties), Normalize(pv->properties));
  auto ne = engines[0]->GetEdge(*sessions[0], 0);
  auto pe = engines[1]->GetEdge(*sessions[1], 0);
  ASSERT_TRUE(ne.ok() && pe.ok());
  EXPECT_EQ(ne->label, pe->label);
  EXPECT_EQ(ne->src, pe->src);
  EXPECT_EQ(ne->dst, pe->dst);
  EXPECT_EQ(Normalize(ne->properties), Normalize(pe->properties));
}

// --- Runner-side validation -------------------------------------------------

TEST(RunnerLoadValidationTest, RejectsDanglingEdgeWithDiagnostic) {
  GraphData data;
  data.name = "dangling";
  data.vertices.push_back({"n", {}});
  data.vertices.push_back({"n", {}});
  data.edges.push_back({0, 5, "l", {}});  // dst out of range

  core::RunnerOptions options;
  options.enable_cost_model = false;
  core::Runner runner(options);
  for (const std::string& engine :
       {std::string("neo19"), std::string("sqlg"), std::string("blaze")}) {
    auto loaded = runner.Load(engine, data);
    ASSERT_FALSE(loaded.ok()) << engine;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << loaded.status();
    // The message names the edge and the offending endpoint.
    EXPECT_NE(loaded.status().ToString().find("edge 0"), std::string::npos)
        << loaded.status();
    EXPECT_NE(loaded.status().ToString().find("dst=5"), std::string::npos)
        << loaded.status();
  }
}

TEST(RunnerLoadValidationTest, DirectBulkLoadAlsoValidates) {
  GraphData data;
  data.vertices.push_back({"n", {}});
  data.edges.push_back({7, 0, "l", {}});  // src out of range
  RegisterBuiltinEngines();
  for (BulkLoadMode mode : {BulkLoadMode::kNative, BulkLoadMode::kPerElement}) {
    EngineOptions options;
    options.bulk_load_mode = mode;
    auto engine = OpenEngine("orient", options);
    ASSERT_TRUE(engine.ok());
    auto mapping = (*engine)->BulkLoad(data);
    ASSERT_FALSE(mapping.ok());
    EXPECT_EQ(mapping.status().code(), StatusCode::kInvalidArgument)
        << mapping.status();
  }
}

}  // namespace
}  // namespace gdbmicro
