// Cost-based optimizer conformance and estimator sanity.
//
// Conformance: for the Table 2 read/traversal shapes (Q.8-Q.35 style)
// the cost-based lowering must return results identical to the
// rule-based lowering — same counted-ness, same count, same traverser
// multiset — on all nine engines, under both execution policies. Both
// engine cost-model modes are covered by the two ctest legs (the second
// CI leg sets GDBMICRO_COST_MODEL=1, which OpenEngine honors here).
//
// Estimator sanity: on a controlled synthetic distribution the
// CardinalityEstimator must be within a documented factor of truth —
// equality estimates are exact while a key's distinct count fits the
// bucket budget (runs of equal values never split across buckets), and
// degree-fraction estimates are within 2x (log2 buckets, uniform
// interpolation inside one bucket).
//
// Fallback: with EngineOptions::collect_statistics=false the lowering
// must be byte-identical to today's rule-based plans (Explain goldens).

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/graph/registry.h"
#include "src/graph/statistics.h"
#include "src/query/stats.h"
#include "src/query/traversal.h"

namespace gdbmicro {
namespace {

using query::CardinalityEstimator;
using query::Plan;
using query::RowKind;
using query::Traversal;
using query::TraversalOutput;

// Order-insensitive canonical form (Gremlin specifies the traverser
// multiset, not its order; see plan_test.cc).
std::multiset<std::tuple<int, uint64_t, std::string>> Canon(
    const TraversalOutput& out) {
  std::multiset<std::tuple<int, uint64_t, std::string>> rows;
  for (size_t i = 0; i < out.rows.size(); ++i) {
    if (out.kind == RowKind::kValue) {
      rows.insert({static_cast<int>(out.kind), 0, std::string(out.values[i])});
    } else {
      rows.insert({static_cast<int>(out.kind), out.rows[i], std::string()});
    }
  }
  return rows;
}

// Skewed synthetic dataset: 200 "user" vertices (one hub), 40 "item"
// vertices. Every vertex carries tier=common except 4 users with
// tier=rare; every vertex carries kind=thing (zero-selectivity trap: a
// filter on it keeps everything). The hub points at every item
// ("likes"); users chain through "follows".
GraphData SkewedData() {
  GraphData data;
  data.name = "skewed";
  auto add_vertex = [&](const char* label, const char* tier) {
    GraphData::Vertex v;
    v.label = label;
    v.properties.emplace_back("tier", PropertyValue(tier));
    v.properties.emplace_back("kind", PropertyValue("thing"));
    data.vertices.push_back(std::move(v));
    return data.vertices.size() - 1;
  };
  for (int i = 0; i < 200; ++i) {
    add_vertex("user", i % 50 == 0 ? "rare" : "common");
  }
  for (int i = 0; i < 40; ++i) add_vertex("item", "common");
  auto add_edge = [&](uint64_t src, uint64_t dst, const char* label) {
    GraphData::Edge e;
    e.src = src;
    e.dst = dst;
    e.label = label;
    data.edges.push_back(std::move(e));
  };
  for (uint64_t i = 0; i < 40; ++i) add_edge(0, 200 + i, "likes");
  for (uint64_t i = 0; i + 1 < 200; ++i) add_edge(i, i + 1, "follows");
  return data;
}

// The adversarially ordered shapes: cheap/common filters written first,
// the selective one last; both() + dedup chains; the Q.8-Q.35 staples.
std::vector<std::pair<std::string, Traversal>> Shapes() {
  std::vector<std::pair<std::string, Traversal>> shapes;
  shapes.emplace_back("has-common-then-rare",
                      Traversal::V()
                          .Has("kind", PropertyValue("thing"))
                          .Has("tier", PropertyValue("rare")));
  shapes.emplace_back("haslabel-then-rare",
                      Traversal::V()
                          .HasLabel("user")
                          .Has("kind", PropertyValue("thing"))
                          .Has("tier", PropertyValue("rare")));
  shapes.emplace_back("rare-then-expand",
                      Traversal::V()
                          .Has("kind", PropertyValue("thing"))
                          .Has("tier", PropertyValue("rare"))
                          .Out());
  shapes.emplace_back("degree-first",
                      Traversal::V()
                          .WhereDegreeAtLeast(Direction::kOut, 10)
                          .Has("tier", PropertyValue("common")));
  shapes.emplace_back("edge-label", Traversal::E().HasLabel("likes"));
  shapes.emplace_back("out-dedup", Traversal::V().Out().Dedup());
  shapes.emplace_back("both-dedup", Traversal::V().Both().Dedup());
  shapes.emplace_back("in-labeled-dedup",
                      Traversal::V().In("follows").Dedup());
  shapes.emplace_back("both-dedup-count",
                      Traversal::V().Both().Dedup().Count());
  shapes.emplace_back("values-after-filters",
                      Traversal::V()
                          .Has("kind", PropertyValue("thing"))
                          .Has("tier", PropertyValue("rare"))
                          .Values("tier"));
  shapes.emplace_back("limit-guard",
                      Traversal::V()
                          .Has("kind", PropertyValue("thing"))
                          .Has("tier", PropertyValue("rare"))
                          .Limit(2));
  shapes.emplace_back("miss-everything",
                      Traversal::V().Has("tier", PropertyValue("absent")));
  return shapes;
}

class OptimizerConformanceTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(OptimizerConformanceTest, CostPlansMatchRuleBasedPlans) {
  auto engine = OpenEngine(GetParam(), EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE((*engine)->BulkLoad(SkewedData()).ok());
  ASSERT_NE((*engine)->statistics(), nullptr);
  auto session = (*engine)->CreateSession();
  CancelToken never;

  for (auto& [name, t] : Shapes()) {
    for (QueryExecution policy :
         {QueryExecution::kStepWise, QueryExecution::kConflated}) {
      auto rule = t.Lower(policy);
      ASSERT_TRUE(rule.ok()) << name;
      auto cost = t.LowerFor(**engine, policy);
      ASSERT_TRUE(cost.ok()) << name;
      EXPECT_FALSE(rule->estimated_rows().size()) << name;
      EXPECT_EQ(cost->estimated_rows().size(), cost->num_operators()) << name;

      auto rule_out = rule->Run(**engine, *session, never);
      ASSERT_TRUE(rule_out.ok()) << name;
      auto cost_out = cost->Run(**engine, *session, never);
      ASSERT_TRUE(cost_out.ok()) << name;
      EXPECT_EQ(rule_out->counted, cost_out->counted) << name;
      EXPECT_EQ(rule_out->counted ? rule_out->count : rule_out->rows.size(),
                cost_out->counted ? cost_out->count : cost_out->rows.size())
          << name;
      EXPECT_EQ(Canon(*rule_out), Canon(*cost_out))
          << name << " under " << QueryExecutionToString(policy);
    }
    // The engine-default Execute() path (cost-based) agrees too.
    auto dflt = t.Execute(**engine, *session, never);
    ASSERT_TRUE(dflt.ok()) << name;
  }
}

// A pure filter permutation preserves even the row ORDER, so Limit-
// bearing chains stay safe; verify ordered equality explicitly.
TEST_P(OptimizerConformanceTest, FilterReorderPreservesRowOrder) {
  auto engine = OpenEngine(GetParam(), EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE((*engine)->BulkLoad(SkewedData()).ok());
  auto session = (*engine)->CreateSession();
  CancelToken never;
  Traversal t = Traversal::V()
                    .Has("kind", PropertyValue("thing"))
                    .HasLabel("user")
                    .Has("tier", PropertyValue("rare"))
                    .Limit(3);
  QueryExecution policy = Traversal::PolicyFor(**engine);
  auto rule = t.Lower(policy);
  auto cost = t.LowerFor(**engine, policy);
  ASSERT_TRUE(rule.ok() && cost.ok());
  auto rule_out = rule->Run(**engine, *session, never);
  auto cost_out = cost->Run(**engine, *session, never);
  ASSERT_TRUE(rule_out.ok() && cost_out.ok());
  EXPECT_EQ(rule_out->rows, cost_out->rows);
}

TEST_P(OptimizerConformanceTest, StatsOffFallbackIsRuleBasedExactly) {
  EngineOptions options;
  options.collect_statistics = false;
  auto engine = OpenEngine(GetParam(), options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE((*engine)->BulkLoad(SkewedData()).ok());
  EXPECT_EQ((*engine)->statistics(), nullptr);
  EXPECT_EQ((*engine)->load_stats().stats_build_millis, 0.0);

  QueryExecution policy = Traversal::PolicyFor(**engine);
  for (auto& [name, t] : Shapes()) {
    // Prepare() must fall back to the rule-based lowering: Explain output
    // byte-identical (the golden format), no row estimates.
    auto prepared = t.Prepare(**engine);
    ASSERT_TRUE(prepared.ok()) << name;
    auto golden = t.ExplainPlan(policy);
    ASSERT_TRUE(golden.ok()) << name;
    EXPECT_EQ(prepared->Explain(), *golden) << name;
    auto lowered = t.LowerFor(**engine, policy);
    ASSERT_TRUE(lowered.ok()) << name;
    EXPECT_TRUE(lowered->estimated_rows().empty()) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, OptimizerConformanceTest,
                         ::testing::Values("arango", "blaze", "neo19", "neo30",
                                           "orient", "sparksee", "sqlg",
                                           "titan05", "titan10"),
                         [](const auto& info) { return info.param; });

// --- Plan-shape expectations on the skewed dataset --------------------------

TEST(OptimizerPlanShapeTest, OrdersSelectiveFilterFirstWithoutIndex) {
  // arango has no native property index, so the chain stays a pipeline —
  // but the rare filter must run before the keep-everything one.
  auto engine = OpenEngine("arango", EngineOptions{});
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->BulkLoad(SkewedData()).ok());
  Traversal t = Traversal::V()
                    .Has("kind", PropertyValue("thing"))
                    .Has("tier", PropertyValue("rare"));
  auto plan = t.LowerFor(**engine, Traversal::PolicyFor(**engine));
  ASSERT_TRUE(plan.ok());
  std::string explain = plan->Explain();
  size_t rare = explain.find("tier == rare");
  size_t common = explain.find("kind == thing");
  ASSERT_NE(rare, std::string::npos) << explain;
  ASSERT_NE(common, std::string::npos) << explain;
  // Root-first print: the upstream (first-run) operator appears LAST.
  EXPECT_GT(rare, common) << explain;
  EXPECT_NE(explain.find("~rows="), std::string::npos) << explain;
}

TEST(OptimizerPlanShapeTest, PicksIndexOnSelectivePredicateNotFirstWritten) {
  // titan10 supports a property index: the rare predicate becomes the
  // access path even though the query writes the common one first.
  auto engine = OpenEngine("titan10", EngineOptions{});
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->BulkLoad(SkewedData()).ok());
  Traversal t = Traversal::V()
                    .Has("kind", PropertyValue("thing"))
                    .Has("tier", PropertyValue("rare"));
  auto plan = t.LowerFor(**engine, Traversal::PolicyFor(**engine));
  ASSERT_TRUE(plan.ok());
  std::string explain = plan->Explain();
  EXPECT_NE(explain.find("PropertyIndexScan(tier == rare"),
            std::string::npos)
      << explain;
}

TEST(OptimizerPlanShapeTest, BothDedupLowersToOneEdgeScan) {
  auto engine = OpenEngine("sqlg", EngineOptions{});
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->BulkLoad(SkewedData()).ok());
  Traversal t = Traversal::V().Both().Dedup();
  auto plan = t.LowerFor(**engine, Traversal::PolicyFor(**engine));
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->Explain().find("DistinctNeighborScan"), std::string::npos)
      << plan->Explain();
}

// --- Estimator sanity bounds -------------------------------------------------

TEST(CardinalityEstimatorTest, EqualityExactWithinBucketBudget) {
  // 3 distinct values with known frequencies — far below the 64-bucket
  // budget, so runs never share a bucket and EstimateEq is exact.
  GraphData data;
  data.name = "est";
  for (int i = 0; i < 100; ++i) {
    GraphData::Vertex v;
    v.label = "n";
    const char* color = i < 80 ? "red" : (i < 95 ? "green" : "blue");
    v.properties.emplace_back("color", PropertyValue(color));
    data.vertices.push_back(std::move(v));
  }
  GraphStatistics stats = GraphStatistics::Collect(data);
  const PropertyKeyStats* key = stats.VertexProperty("color");
  ASSERT_NE(key, nullptr);
  EXPECT_DOUBLE_EQ(key->EstimateEq(PropertyValue("red")), 80.0);
  EXPECT_DOUBLE_EQ(key->EstimateEq(PropertyValue("green")), 15.0);
  EXPECT_DOUBLE_EQ(key->EstimateEq(PropertyValue("blue")), 5.0);
  // Beyond the observed domain: 0. (An in-domain miss estimates at its
  // covering bucket — a histogram cannot tell absence from presence.)
  EXPECT_DOUBLE_EQ(key->EstimateEq(PropertyValue("zzz")), 0.0);
  // Unknown probe (prepared plans): key-wide average.
  EXPECT_DOUBLE_EQ(key->EstimateEq(PropertyValue()), 100.0 / 3.0);
}

TEST(CardinalityEstimatorTest, DegreeFractionWithinFactorTwo) {
  // 90 vertices of out-degree 1, 10 hubs of out-degree 9: the true
  // fraction with degree >= 5 is 0.10. Log2 buckets put degree 9 in
  // [8, 15] and degree 5 in [4, 7]; the documented bound is 2x.
  GraphData data;
  data.name = "deg";
  for (int i = 0; i < 100; ++i) {
    GraphData::Vertex v;
    v.label = "n";
    data.vertices.push_back(std::move(v));
  }
  auto add_edge = [&](uint64_t src, uint64_t dst) {
    GraphData::Edge e;
    e.src = src;
    e.dst = dst;
    e.label = "l";
    data.edges.push_back(std::move(e));
  };
  for (uint64_t i = 0; i < 90; ++i) add_edge(i, (i + 1) % 100);
  for (uint64_t h = 90; h < 100; ++h) {
    for (uint64_t j = 0; j < 9; ++j) add_edge(h, j);
  }
  GraphStatistics stats = GraphStatistics::Collect(data);
  double truth = 0.10;
  double est = stats.FractionDegreeAtLeast(Direction::kOut, 5);
  EXPECT_GE(est, truth / 2.0);
  EXPECT_LE(est, truth * 2.0);
  // Exact at bucket boundaries and the trivial probes.
  EXPECT_DOUBLE_EQ(stats.FractionDegreeAtLeast(Direction::kOut, 0), 1.0);
  EXPECT_DOUBLE_EQ(stats.FractionDegreeAtLeast(Direction::kOut, 1000), 0.0);
  EXPECT_DOUBLE_EQ(stats.AvgDegree(Direction::kOut),
                   static_cast<double>(data.edges.size()) / 100.0);
}

TEST(CardinalityEstimatorTest, ZeroElementLabelsAreTotal) {
  // Unknown labels/keys and empty datasets must estimate 0 everywhere,
  // never divide by zero (the S1 regression surface).
  GraphData empty;
  empty.name = "empty";
  GraphStatistics none = GraphStatistics::Collect(empty);
  EXPECT_EQ(none.VerticesWithLabel("ghost"), 0u);
  EXPECT_EQ(none.EdgesWithLabel("ghost"), 0u);
  EXPECT_EQ(none.VertexProperty("ghost"), nullptr);
  EXPECT_DOUBLE_EQ(none.AvgDegree(Direction::kBoth), 0.0);
  EXPECT_DOUBLE_EQ(none.AvgDegree(Direction::kBoth, "ghost"), 0.0);
  EXPECT_DOUBLE_EQ(none.FractionDegreeAtLeast(Direction::kOut, 1), 0.0);

  GraphData single;
  single.name = "single";
  single.vertices.push_back({"only", {}});
  GraphStatistics one = GraphStatistics::Collect(single);
  EXPECT_EQ(one.vertices, 1u);
  EXPECT_EQ(one.VerticesWithLabel("only"), 1u);
  EXPECT_DOUBLE_EQ(one.AvgDegree(Direction::kOut), 0.0);
  EXPECT_DOUBLE_EQ(one.FractionDegreeAtLeast(Direction::kOut, 1), 0.0);
  EXPECT_DOUBLE_EQ(one.FractionDegreeAtLeast(Direction::kOut, 0), 1.0);

  CardinalityEstimator est(one, /*supports_property_index=*/true);
  query::LogicalStep has{query::LogicalOp::kHas};
  has.key = "ghost";
  has.value = PropertyValue("x");
  EXPECT_DOUBLE_EQ(est.HasRows(has), 0.0);
  EXPECT_EQ(est.SelectivityClass("ghost", PropertyValue("x")), 0);
}

}  // namespace
}  // namespace gdbmicro
