// Paper-shape tests: robust qualitative assertions of the findings the
// reproduction targets (see EXPERIMENTS.md). These deliberately avoid
// tight timing margins — each asserts an effect the paper reports that is
// either structural (failures, space ratios, result sets) or separated by
// an order of magnitude.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/runner.h"
#include "src/datasets/generators.h"
#include "src/graph/registry.h"
#include "src/query/algorithms.h"
#include "src/query/traversal.h"
#include "src/util/timer.h"

namespace gdbmicro {
namespace {

GraphData HubGraph() {
  datasets::GenOptions gen;
  gen.scale = 0.01;
  return datasets::GenerateFreebase(datasets::FreebaseKind::kTopic, gen);
}

Result<uint64_t> CheckpointBytes(GraphEngine& engine, const std::string& tag) {
  return core::MeasureSpace(engine,
                            ::testing::TempDir() + "/gdbmicro_shape_" + tag);
}

// Fig. 1(a): Titan's delta-encoded adjacency lists are the most compact
// representation of a hub-heavy graph; BlazeGraph's journal + three
// statement indexes are the least compact, by a wide margin.
TEST(PaperShapeTest, TitanSmallestBlazeLargestOnHubGraphs) {
  GraphData data = HubGraph();
  std::map<std::string, uint64_t> bytes;
  for (const std::string& name : {"titan10", "neo19", "blaze"}) {
    auto engine = OpenEngine(name, EngineOptions{});
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->BulkLoad(data).ok());
    auto b = CheckpointBytes(**engine, name);
    ASSERT_TRUE(b.ok()) << name << ": " << b.status();
    bytes[name] = *b;
  }
  EXPECT_LT(bytes["titan10"], bytes["neo19"]);
  EXPECT_GT(bytes["blaze"], 2 * bytes["titan10"]);
}

// Fig. 1(b): OrientDB pays a per-edge-label cluster overhead — on a
// label-heavy dataset (frb-s regime) its footprint grows with |L| even
// when |E| stays fixed.
TEST(PaperShapeTest, OrientFootprintGrowsWithLabelCardinality) {
  auto build = [](int labels) -> uint64_t {
    auto engine = OpenEngine("orient", EngineOptions{});
    EXPECT_TRUE(engine.ok());
    std::vector<VertexId> v;
    for (int i = 0; i < 200; ++i) {
      v.push_back((*engine)->AddVertex("n", {}).value());
    }
    for (int i = 0; i < 1000; ++i) {
      (*engine)
          ->AddEdge(v[i % 200], v[(i * 7 + 1) % 200],
                    "label_" + std::to_string(i % labels), {})
          .value();
    }
    auto b = CheckpointBytes(**engine, "orient_labels");
    EXPECT_TRUE(b.ok());
    return b.value_or(0);
  };
  uint64_t few = build(4);
  uint64_t many = build(400);
  EXPECT_GT(many, few + 100 * 16384 / 2)  // ~per-cluster page overhead
      << "per-label clusters should dominate the footprint";
}

// Fig. 5(b) vs Fig. 6: sparksee's memory exhaustion is specific to the
// degree-filter path; a BFS over the same graph under the same budget
// succeeds.
TEST(PaperShapeTest, SparkseeDegreeFilterOomButBfsCompletes) {
  GraphData data = HubGraph();
  EngineOptions options;
  options.memory_budget_bytes = 256 * 1024;
  auto engine = OpenEngine("sparksee", options);
  ASSERT_TRUE(engine.ok());
  auto mapping = (*engine)->BulkLoad(data);
  ASSERT_TRUE(mapping.ok());
  CancelToken never;
  auto session = (*engine)->CreateSession();

  session->BeginQuery();
  auto degree = query::Traversal::V()
                    .WhereDegreeAtLeast(Direction::kBoth, 4)
                    .Count()
                    .ExecuteCount(**engine, *session, never);
  ASSERT_FALSE(degree.ok());
  EXPECT_TRUE(degree.status().IsResourceExhausted()) << degree.status();

  session->BeginQuery();
  auto bfs = query::BreadthFirst(**engine, *session, mapping->vertex_ids[1],
                                 4, std::nullopt, never);
  EXPECT_TRUE(bfs.ok()) << bfs.status();
}

// Fig. 3(b): the Neo4j 3.0 wrapper makes single CUD operations an order
// of magnitude slower than 1.9, while leaving bulk load competitive.
TEST(PaperShapeTest, Neo30WrapperSlowsSingleWrites) {
  EngineOptions options;
  options.enable_cost_model = true;
  auto v19 = OpenEngine("neo19", options);
  auto v30 = OpenEngine("neo30", options);
  ASSERT_TRUE(v19.ok() && v30.ok());

  auto time_insert = [](GraphEngine& engine) {
    Timer timer;
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(engine.AddVertex("n", {}).ok());
    }
    return timer.ElapsedMicros() / 5;
  };
  int64_t t19 = time_insert(**v19);
  int64_t t30 = time_insert(**v30);
  EXPECT_LT(t19, 300) << "neo19 single insert should be microsecond-class";
  EXPECT_GT(t30, 10 * t19) << "the 3.0 wrapper should dominate";
}

// Fig. 3(c): Titan deletions are tombstones — an order of magnitude
// cheaper than its insertions.
TEST(PaperShapeTest, TitanTombstoneDeletesAreCheap) {
  EngineOptions options;
  options.enable_cost_model = true;
  auto engine = OpenEngine("titan05", options);
  ASSERT_TRUE(engine.ok());
  auto a = (*engine)->AddVertex("n", {});
  auto b = (*engine)->AddVertex("n", {});
  std::vector<EdgeId> edges;
  Timer insert_timer;
  for (int i = 0; i < 5; ++i) {
    edges.push_back((*engine)->AddEdge(*a, *b, "l", {}).value());
  }
  int64_t insert_us = insert_timer.ElapsedMicros() / 5;
  Timer delete_timer;
  for (EdgeId e : edges) {
    ASSERT_TRUE((*engine)->RemoveEdge(e).ok());
  }
  int64_t delete_us = delete_timer.ElapsedMicros() / 5;
  EXPECT_LT(delete_us * 5, insert_us)
      << "tombstone deletes should be far cheaper than the write path";
}

// §6.4 indexing: neo19/orient/sqlg/titan exploit a user attribute index;
// sparksee/arango accept it without any effect on the search plan; blaze
// cannot create one. Either way results are identical.
TEST(PaperShapeTest, IndexAdoptionMatrix) {
  datasets::GenOptions gen;
  gen.scale = 0.01;
  GraphData data = datasets::GenerateMiCo(gen);
  CancelToken never;

  for (const std::string& name :
       {"neo19", "orient", "sqlg", "titan10", "sparksee", "arango"}) {
    auto engine = OpenEngine(name, EngineOptions{});
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->BulkLoad(data).ok());
    auto session = (*engine)->CreateSession();
    auto probe = data.vertices[7].properties.front();
    auto before = (*engine)->FindVerticesByProperty(*session, probe.first,
                                                    probe.second, never);
    ASSERT_TRUE(before.ok()) << name;
    Status created = (*engine)->CreateVertexPropertyIndex(probe.first);
    ASSERT_TRUE(created.ok()) << name << ": " << created;
    auto after = (*engine)->FindVerticesByProperty(*session, probe.first,
                                                   probe.second, never);
    ASSERT_TRUE(after.ok()) << name;
    EXPECT_EQ(before->size(), after->size()) << name;
  }
  auto blaze = OpenEngine("blaze", EngineOptions{});
  ASSERT_TRUE(blaze.ok());
  EXPECT_TRUE((*blaze)->CreateVertexPropertyIndex("name").IsUnimplemented());
}

// §6.2: label-filtered expansion on sqlg touches exactly one join table
// and must not degrade with the number of *other* edge labels, while its
// unfiltered expansion does.
TEST(PaperShapeTest, SqlgLabelFilterIndependentOfLabelCount) {
  auto engine = OpenEngine("sqlg", EngineOptions{});
  ASSERT_TRUE(engine.ok());
  std::vector<VertexId> v;
  for (int i = 0; i < 50; ++i) {
    v.push_back((*engine)->AddVertex("n", {}).value());
  }
  // One "hot" label + 800 cold tables.
  for (int i = 0; i < 200; ++i) {
    (*engine)->AddEdge(v[0], v[1 + i % 49], "hot", {}).value();
  }
  for (int i = 0; i < 800; ++i) {
    (*engine)
        ->AddEdge(v[2], v[3], "cold_" + std::to_string(i), {})
        .value();
  }
  CancelToken never;
  auto session = (*engine)->CreateSession();
  std::string hot = "hot";
  Timer filtered_timer;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        (*engine)->EdgesOf(*session, v[0], Direction::kOut, &hot, never)
            .ok());
  }
  int64_t filtered = filtered_timer.ElapsedMicros();
  Timer unfiltered_timer;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        (*engine)->EdgesOf(*session, v[0], Direction::kOut, nullptr, never)
            .ok());
  }
  int64_t unfiltered = unfiltered_timer.ElapsedMicros();
  EXPECT_GT(unfiltered, 3 * filtered)
      << "unfiltered expansion must pay the union over every edge table";
}

// The conflation asymmetry behind Fig. 5(b)'s Q31 row: sqlg's adapter
// conflates V().out().dedup() into one scan; the result matches the
// step-wise execution of a non-conflating engine.
TEST(PaperShapeTest, ConflatedQ31MatchesStepwise) {
  datasets::GenOptions gen;
  gen.scale = 0.005;
  GraphData data = datasets::GenerateLdbc(gen);
  CancelToken never;
  std::map<std::string, uint64_t> counts;
  for (const std::string& name : {"sqlg", "neo19"}) {
    auto engine = OpenEngine(name, EngineOptions{});
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->BulkLoad(data).ok());
    auto session = (*engine)->CreateSession();
    auto n = query::Traversal::V().Out().Dedup().Count().ExecuteCount(
        **engine, *session, never);
    ASSERT_TRUE(n.ok());
    counts[name] = *n;
  }
  EXPECT_EQ(counts["sqlg"], counts["neo19"]);
}

}  // namespace
}  // namespace gdbmicro
