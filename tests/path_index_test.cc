// PathIndex conformance across all nine engines: every indexed
// reachability / BFS / shortest-path answer must equal the reference
// frontier answer on a cyclic multi-component graph (SCC condensation,
// interval labels, components, and landmarks all exercised), the index
// must invalidate with a typed status when a commit publishes a new
// epoch, and a governor trip during build must leave the engine fully
// usable on the frontier path. The concurrent-probe test runs under the
// TSan CI job: probes are const and thread-safe by contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "src/graph/registry.h"
#include "src/graph/writer.h"
#include "src/query/algorithms.h"
#include "src/query/governor.h"

namespace gdbmicro {
namespace {

using query::BreadthFirst;
using query::KHopReachable;
using query::PathMode;
using query::ShortestPath;

// Fixture graph — three undirected components, cycles and tendrils:
//
//   A:  r0 -> r1 -> r2 -> r3 -> r0   (directed 4-cycle: one SCC)
//       r0 -> r2                     (chord)
//       r0 -> r1                     (parallel edge)
//       r2 -> r2                     (self-loop)
//       r1 -> a0 -> a1               (DAG tail)
//   B:  b0 -> b1 -> b2, b2 -> b1     ({b1, b2} is an SCC)
//   C:  c0                           (isolated)
//
// 10 vertices, 6 SCCs, 3 components — small enough that the
// cost-model-on ctest leg stays fast, rich enough that every index tier
// (condensation, intervals, components, landmarks) decides something.
class PathIndexTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    RegisterBuiltinEngines();
    auto engine = OpenEngine(GetParam(), EngineOptions{});
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();

    auto add = [&](const char* label) {
      auto v = engine_->AddVertex(label, {});
      EXPECT_TRUE(v.ok());
      all_.push_back(*v);
      return *v;
    };
    r_[0] = add("ring");
    r_[1] = add("ring");
    r_[2] = add("ring");
    r_[3] = add("ring");
    a_[0] = add("tail");
    a_[1] = add("tail");
    b_[0] = add("line");
    b_[1] = add("line");
    b_[2] = add("line");
    c_ = add("lone");
    auto edge = [&](VertexId s, VertexId t) {
      ASSERT_TRUE(engine_->AddEdge(s, t, "e", {}).ok());
    };
    edge(r_[0], r_[1]);
    edge(r_[1], r_[2]);
    edge(r_[2], r_[3]);
    edge(r_[3], r_[0]);
    edge(r_[0], r_[2]);  // chord
    edge(r_[0], r_[1]);  // parallel
    edge(r_[2], r_[2]);  // self-loop
    edge(r_[1], a_[0]);
    edge(a_[0], a_[1]);
    edge(b_[0], b_[1]);
    edge(b_[1], b_[2]);
    edge(b_[2], b_[1]);

    ASSERT_TRUE(engine_->BuildPathIndex(never_).ok())
        << engine_->path_index_status();
    session_ = engine_->CreateSession();
  }

  std::set<VertexId> VisitedSetOf(const query::BfsResult& r) {
    return std::set<VertexId>(r.visited.begin(), r.visited.end());
  }

  /// Every consecutive pair of an SP path must be engine-adjacent.
  void ExpectValidPath(const std::vector<VertexId>& path, VertexId src,
                       VertexId dst) {
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), dst);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      auto neighbors = engine_->NeighborsOf(*session_, path[i],
                                            Direction::kBoth, nullptr, never_);
      ASSERT_TRUE(neighbors.ok());
      EXPECT_TRUE(std::find(neighbors->begin(), neighbors->end(),
                            path[i + 1]) != neighbors->end())
          << "path edge " << path[i] << " -> " << path[i + 1]
          << " is not an engine edge";
    }
  }

  std::unique_ptr<GraphEngine> engine_;
  std::unique_ptr<QuerySession> session_;
  std::vector<VertexId> all_;
  VertexId r_[4], a_[2], b_[3], c_ = 0;
  CancelToken never_;
};

TEST_P(PathIndexTest, BuildStatsDescribeTheGraph) {
  const PathIndex* index = engine_->path_index();
  ASSERT_NE(index, nullptr);
  EXPECT_TRUE(engine_->path_index_status().ok());
  const PathIndexStats& st = index->stats();
  EXPECT_EQ(st.vertices, 10u);
  EXPECT_EQ(st.edges, 12u);
  EXPECT_EQ(st.sccs, 6u);  // {r0..r3}, {a0}, {a1}, {b0}, {b1,b2}, {c0}
  EXPECT_EQ(st.components, 3u);
  EXPECT_GT(st.landmarks, 0);
  EXPECT_GT(st.bytes, 0u);
  EXPECT_FALSE(index->Describe().empty());
}

TEST_P(PathIndexTest, NotBuiltByDefault) {
  auto other = OpenEngine(GetParam(), EngineOptions{});
  ASSERT_TRUE(other.ok());
  EXPECT_EQ((*other)->path_index(), nullptr);
  EXPECT_TRUE((*other)->path_index_status().IsUnavailable());
}

TEST_P(PathIndexTest, IndexedBfsMatchesFrontierEverywhere) {
  for (VertexId start : all_) {
    for (int depth = 1; depth <= 4; ++depth) {
      auto indexed = BreadthFirst(*engine_, *session_, start, depth,
                                  std::nullopt, never_, PathMode::kAuto);
      auto frontier =
          BreadthFirst(*engine_, *session_, start, depth, std::nullopt,
                       never_, PathMode::kFrontierOnly);
      ASSERT_TRUE(indexed.ok()) << indexed.status();
      ASSERT_TRUE(frontier.ok()) << frontier.status();
      EXPECT_TRUE(indexed->stats.used_index);
      EXPECT_STREQ(indexed->stats.route, "index-bfs");
      EXPECT_FALSE(frontier->stats.used_index);
      EXPECT_EQ(VisitedSetOf(*indexed), VisitedSetOf(*frontier))
          << "start " << start << " depth " << depth;
      EXPECT_EQ(indexed->depth_reached, frontier->depth_reached);
      // Start-vertex semantics survive the indexed route: never reported.
      EXPECT_EQ(std::count(indexed->visited.begin(), indexed->visited.end(),
                           start),
                0);
    }
  }
}

TEST_P(PathIndexTest, IndexedShortestPathAgreesOnAllPairs) {
  for (VertexId src : all_) {
    for (VertexId dst : all_) {
      for (int max_depth : {1, 10}) {
        auto indexed = ShortestPath(*engine_, *session_, src, dst,
                                    std::nullopt, max_depth, never_,
                                    PathMode::kAuto);
        auto frontier = ShortestPath(*engine_, *session_, src, dst,
                                     std::nullopt, max_depth, never_,
                                     PathMode::kFrontierOnly);
        ASSERT_TRUE(indexed.ok()) << indexed.status();
        ASSERT_TRUE(frontier.ok()) << frontier.status();
        EXPECT_EQ(indexed->found, frontier->found)
            << src << " -> " << dst << " depth " << max_depth;
        if (indexed->found) {
          // Minimum-hop length must agree; the witness path may differ
          // (ties broken by visit order on either route) but must be a
          // real path.
          EXPECT_EQ(indexed->path.size(), frontier->path.size());
          ExpectValidPath(indexed->path, src, dst);
        } else {
          EXPECT_TRUE(indexed->path.empty());
        }
      }
    }
  }
}

TEST_P(PathIndexTest, KHopReachableAgreesAcrossDirectionsAndBudgets) {
  for (VertexId src : all_) {
    for (VertexId dst : all_) {
      for (Direction dir :
           {Direction::kBoth, Direction::kOut, Direction::kIn}) {
        for (int k : {0, 1, 2, 3, -1}) {
          auto indexed = KHopReachable(*engine_, *session_, src, dst, dir, k,
                                       std::nullopt, never_, PathMode::kAuto);
          auto frontier =
              KHopReachable(*engine_, *session_, src, dst, dir, k,
                            std::nullopt, never_, PathMode::kFrontierOnly);
          ASSERT_TRUE(indexed.ok()) << indexed.status();
          ASSERT_TRUE(frontier.ok()) << frontier.status();
          EXPECT_EQ(indexed->reachable, frontier->reachable)
              << src << " -> " << dst << " dir " << static_cast<int>(dir)
              << " k " << k << " (route " << indexed->stats.route << ")";
        }
      }
    }
  }
}

TEST_P(PathIndexTest, DirectedCertainAnswersComeFromTheIndex) {
  // a1 cannot reach the ring (all its edges point away from it): the
  // interval labels refute containment without any search.
  auto neg = KHopReachable(*engine_, *session_, a_[1], r_[0], Direction::kOut,
                           -1, std::nullopt, never_);
  ASSERT_TRUE(neg.ok());
  EXPECT_FALSE(neg->reachable);
  EXPECT_TRUE(neg->stats.used_index);
  EXPECT_EQ(neg->stats.expanded, 0u);

  // Same-SCC pairs are a certain yes.
  auto pos = KHopReachable(*engine_, *session_, r_[0], r_[3], Direction::kOut,
                           -1, std::nullopt, never_);
  ASSERT_TRUE(pos.ok());
  EXPECT_TRUE(pos->reachable);
  EXPECT_STREQ(pos->stats.route, "index-interval");

  // Cross-component shortest path: certain negative from components.
  auto cross = ShortestPath(*engine_, *session_, r_[0], b_[0], std::nullopt,
                            30, never_);
  ASSERT_TRUE(cross.ok());
  EXPECT_FALSE(cross->found);
  EXPECT_STREQ(cross->stats.route, "index-component");
  EXPECT_EQ(cross->stats.expanded, 0u);
}

TEST_P(PathIndexTest, EdgeCaseSemanticsAgree) {
  // source == target: {src}, found, no existence check — both routes.
  for (PathMode mode : {PathMode::kAuto, PathMode::kFrontierOnly}) {
    auto self = ShortestPath(*engine_, *session_, r_[2], r_[2], std::nullopt,
                             10, never_, mode);
    ASSERT_TRUE(self.ok());
    EXPECT_TRUE(self->found);
    EXPECT_EQ(self->path, std::vector<VertexId>{r_[2]});
  }
  // Self-loop vertex: BFS from r2 never reports r2 itself.
  auto bfs = BreadthFirst(*engine_, *session_, r_[2], 3, std::nullopt,
                          never_, PathMode::kAuto);
  ASSERT_TRUE(bfs.ok());
  EXPECT_EQ(std::count(bfs->visited.begin(), bfs->visited.end(), r_[2]), 0);
  // Parallel edges: r1 appears exactly once in r0's BFS.
  auto par = BreadthFirst(*engine_, *session_, r_[0], 1, std::nullopt,
                          never_, PathMode::kAuto);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(std::count(par->visited.begin(), par->visited.end(), r_[1]), 1);
  // Unreachable target: both routes agree, indexed answers without search.
  for (PathMode mode : {PathMode::kAuto, PathMode::kFrontierOnly}) {
    auto un = ShortestPath(*engine_, *session_, r_[0], c_, std::nullopt, 30,
                           never_, mode);
    ASSERT_TRUE(un.ok());
    EXPECT_FALSE(un->found);
    EXPECT_TRUE(un->path.empty());
  }
  // Unknown start id: the indexed route must defer to the engine's
  // missing-vertex semantics (whatever they are, both modes agree).
  const VertexId no_such = 0x7FFFFFFFFFFFULL;
  auto missing_auto = BreadthFirst(*engine_, *session_, no_such, 2,
                                   std::nullopt, never_, PathMode::kAuto);
  auto missing_frontier =
      BreadthFirst(*engine_, *session_, no_such, 2, std::nullopt, never_,
                   PathMode::kFrontierOnly);
  EXPECT_EQ(missing_auto.ok(), missing_frontier.ok());
  if (missing_auto.ok()) {
    EXPECT_EQ(VisitedSetOf(*missing_auto), VisitedSetOf(*missing_frontier));
  }
}

TEST_P(PathIndexTest, LabelFilteredQueriesNeverUseTheIndex) {
  auto bfs = BreadthFirst(*engine_, *session_, r_[0], 3, std::string("e"),
                          never_, PathMode::kAuto);
  ASSERT_TRUE(bfs.ok());
  EXPECT_TRUE(bfs->stats.index_available);
  EXPECT_FALSE(bfs->stats.used_index);
  EXPECT_STREQ(bfs->stats.route, "frontier");
}

TEST_P(PathIndexTest, CommitInvalidatesWithTypedStatus) {
  ASSERT_NE(engine_->path_index(), nullptr);
  // Sessions pin the snapshot epoch; the commit's apply phase drains them,
  // so release ours first (holding it would deadlock BeginApply — which is
  // exactly the guarantee that makes invalidation race-free).
  session_.reset();

  GraphWriter writer(engine_.get());
  WriteBatch batch;
  PendingVertex nv = batch.AddVertex("ring", {});
  batch.AddEdge(nv, VertexRef(r_[0]), "e", {});
  auto receipt = writer.Commit(batch);
  ASSERT_TRUE(receipt.ok()) << receipt.status();

  EXPECT_EQ(engine_->path_index(), nullptr);
  Status st = engine_->path_index_status();
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_NE(st.message().find("invalidated by commit"), std::string::npos)
      << st;

  // Queries still run (frontier fallback) and see the new vertex.
  session_ = engine_->CreateSession();
  VertexId added = receipt->vertex_ids[0];
  auto bfs = BreadthFirst(*engine_, *session_, r_[0], 1, std::nullopt,
                          never_, PathMode::kAuto);
  ASSERT_TRUE(bfs.ok());
  EXPECT_FALSE(bfs->stats.used_index);
  EXPECT_EQ(VisitedSetOf(*bfs).count(added), 1u);

  // Rebuild covers the committed write; indexed answers include it.
  ASSERT_TRUE(engine_->BuildPathIndex(never_).ok());
  auto rebuilt = BreadthFirst(*engine_, *session_, r_[0], 1, std::nullopt,
                              never_, PathMode::kAuto);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(rebuilt->stats.used_index);
  EXPECT_EQ(VisitedSetOf(*rebuilt).count(added), 1u);
}

TEST_P(PathIndexTest, GovernorTripDuringBuildLeavesEngineUsable) {
  // Memory trip: a budget far below the index's own structures.
  query::GovernorOptions tight;
  tight.memory_budget_bytes = 64;
  query::ResourceGovernor memory_gov(tight);
  Status build = engine_->BuildPathIndex(memory_gov.token());
  EXPECT_TRUE(build.IsResourceExhausted()) << build;
  EXPECT_EQ(engine_->path_index(), nullptr);
  EXPECT_TRUE(engine_->path_index_status().IsResourceExhausted());

  // Deadline trip: an already-spent deadline.
  query::GovernorOptions spent;
  spent.deadline = std::chrono::nanoseconds(-1);
  query::ResourceGovernor deadline_gov(spent);
  build = engine_->BuildPathIndex(deadline_gov.token());
  EXPECT_TRUE(build.IsDeadlineExceeded()) << build;
  EXPECT_EQ(engine_->path_index(), nullptr);

  // The engine stays fully usable on the frontier path...
  auto bfs = BreadthFirst(*engine_, *session_, r_[0], 2, std::nullopt,
                          never_, PathMode::kAuto);
  ASSERT_TRUE(bfs.ok());
  EXPECT_FALSE(bfs->stats.used_index);
  EXPECT_EQ(VisitedSetOf(*bfs),
            (std::set<VertexId>{r_[1], r_[2], r_[3], a_[0]}));

  // ...and an ungoverned rebuild recovers completely.
  ASSERT_TRUE(engine_->BuildPathIndex(never_).ok());
  auto indexed = BreadthFirst(*engine_, *session_, r_[0], 2, std::nullopt,
                              never_, PathMode::kAuto);
  ASSERT_TRUE(indexed.ok());
  EXPECT_TRUE(indexed->stats.used_index);
  EXPECT_EQ(VisitedSetOf(*indexed),
            (std::set<VertexId>{r_[1], r_[2], r_[3], a_[0]}));
}

TEST_P(PathIndexTest, BulkLoadBuildsAndChargesTheIndex) {
  GraphData data;
  data.name = "tiny";
  for (int i = 0; i < 6; ++i) data.vertices.push_back({"n", {}});
  auto edge = [&](uint64_t s, uint64_t t) {
    data.edges.push_back({s, t, "e", {}});
  };
  edge(0, 1);
  edge(1, 2);
  edge(2, 0);  // cycle
  edge(2, 3);
  edge(4, 5);  // second component

  auto plain = OpenEngine(GetParam(), EngineOptions{});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE((*plain)->BulkLoad(data).ok());
  EXPECT_EQ((*plain)->path_index(), nullptr);  // off by default
  EXPECT_EQ((*plain)->load_stats().path_index_build_millis, 0.0);

  EngineOptions with_index;
  with_index.build_path_index = true;
  auto indexed = OpenEngine(GetParam(), with_index);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE((*indexed)->BulkLoad(data).ok());
  const PathIndex* index = (*indexed)->path_index();
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->stats().vertices, 6u);
  EXPECT_EQ(index->stats().components, 2u);
  const BulkLoadStats& ls = (*indexed)->load_stats();
  EXPECT_GT(ls.path_index_build_millis, 0.0);
  EXPECT_GE(ls.TotalMillis(), ls.path_index_build_millis);
}

TEST_P(PathIndexTest, ConcurrentSessionsShareOneIndex) {
  // Reference answers computed single-threaded on the frontier path.
  auto ref_bfs = BreadthFirst(*engine_, *session_, r_[0], 3, std::nullopt,
                              never_, PathMode::kFrontierOnly);
  ASSERT_TRUE(ref_bfs.ok());
  const std::set<VertexId> want_bfs = VisitedSetOf(*ref_bfs);
  auto ref_sp = ShortestPath(*engine_, *session_, r_[0], a_[1], std::nullopt,
                             30, never_, PathMode::kFrontierOnly);
  ASSERT_TRUE(ref_sp.ok());
  const size_t want_sp_len = ref_sp->path.size();

  constexpr int kThreads = 4;
  constexpr int kIterations = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&] {
      auto session = engine_->CreateSession();
      CancelToken never;
      for (int i = 0; i < kIterations; ++i) {
        auto bfs = BreadthFirst(*engine_, *session, r_[0], 3, std::nullopt,
                                never, PathMode::kAuto);
        if (!bfs.ok() || !bfs->stats.used_index ||
            std::set<VertexId>(bfs->visited.begin(), bfs->visited.end()) !=
                want_bfs) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        auto sp = ShortestPath(*engine_, *session, r_[0], a_[1], std::nullopt,
                               30, never, PathMode::kAuto);
        if (!sp.ok() || !sp->found || sp->path.size() != want_sp_len) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        auto reach = KHopReachable(*engine_, *session, b_[0], c_,
                                   Direction::kBoth, -1, std::nullopt, never,
                                   PathMode::kAuto);
        if (!reach.ok() || reach->reachable) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, PathIndexTest,
    ::testing::Values("arango", "blaze", "neo19", "neo30", "orient",
                      "sparksee", "sqlg", "titan05", "titan10"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace gdbmicro
