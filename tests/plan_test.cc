// Tests for the physical-plan layer: lowering goldens (ExplainPlan),
// step-wise vs conflated policy equivalence across the Table 2
// read/traversal query shapes on every engine, the typed per-engine
// execution-policy contract, limit early-stop, and the no-materialization
// guarantee of a streaming trailing count.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/graph/registry.h"
#include "src/query/traversal.h"

namespace gdbmicro {
namespace {

using query::Plan;
using query::PlanStats;
using query::RowKind;
using query::Traversal;
using query::TraversalOutput;

// Order-insensitive canonical form of an output: Gremlin specifies the
// traverser multiset, not its order (each engine emits in storage order).
// Value rows canonicalize by their materialized string (pool indexes are
// session-local), id rows by the flat id.
std::multiset<std::tuple<int, uint64_t, std::string>> Canon(
    const TraversalOutput& out) {
  std::multiset<std::tuple<int, uint64_t, std::string>> rows;
  for (size_t i = 0; i < out.rows.size(); ++i) {
    if (out.kind == RowKind::kValue) {
      rows.insert({static_cast<int>(out.kind), 0, std::string(out.values[i])});
    } else {
      rows.insert({static_cast<int>(out.kind), out.rows[i], std::string()});
    }
  }
  return rows;
}

// Fixture builds the known small social graph (same shape as query_test):
//
//   p0 -knows-> p1 -knows-> p2 -knows-> p3     (chain)
//   p0 -knows-> p2                              (shortcut)
//   p4                                          (isolated person)
//   post0 -hasCreator-> p1, post0 -hasTag-> t0
class PlanEquivalenceTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    auto engine = OpenEngine(GetParam(), EngineOptions{});
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();
    session_ = engine_->CreateSession();

    auto add_person = [&](const char* name) {
      PropertyMap props;
      props.emplace_back("name", PropertyValue(name));
      auto v = engine_->AddVertex("person", props);
      EXPECT_TRUE(v.ok());
      return *v;
    };
    p_[0] = add_person("ada");
    p_[1] = add_person("bob");
    p_[2] = add_person("cyd");
    p_[3] = add_person("dee");
    p_[4] = add_person("eve");
    knows0_ = engine_->AddEdge(p_[0], p_[1], "knows", {}).value();
    ASSERT_TRUE(engine_->AddEdge(p_[1], p_[2], "knows", {}).ok());
    ASSERT_TRUE(engine_->AddEdge(p_[2], p_[3], "knows", {}).ok());
    ASSERT_TRUE(engine_->AddEdge(p_[0], p_[2], "knows", {}).ok());
    post_ = engine_->AddVertex("post", {}).value();
    tag_ = engine_->AddVertex("tag", {}).value();
    ASSERT_TRUE(engine_->AddEdge(post_, p_[1], "hasCreator", {}).ok());
    ASSERT_TRUE(engine_->AddEdge(post_, tag_, "hasTag", {}).ok());
  }

  /// Runs `t` under both policies plus the engine-default Execute() and
  /// requires identical counted-ness, counts, and traverser multisets.
  /// Returns the step-wise output for golden assertions.
  TraversalOutput RequirePolicyEquivalence(const Traversal& t,
                                           const char* shape) {
    auto step_plan = t.Lower(QueryExecution::kStepWise);
    auto conf_plan = t.Lower(QueryExecution::kConflated);
    EXPECT_TRUE(step_plan.ok() && conf_plan.ok()) << shape;
    auto step = step_plan->Run(*engine_, *session_, never_);
    auto conf = conf_plan->Run(*engine_, *session_, never_);
    auto dflt = t.Execute(*engine_, *session_, never_);
    EXPECT_TRUE(step.ok()) << shape << ": " << step.status();
    EXPECT_TRUE(conf.ok()) << shape << ": " << conf.status();
    EXPECT_TRUE(dflt.ok()) << shape << ": " << dflt.status();
    if (!step.ok() || !conf.ok() || !dflt.ok()) return TraversalOutput{};
    EXPECT_EQ(step->counted, conf->counted) << shape;
    EXPECT_EQ(step->count, conf->count) << shape;
    EXPECT_EQ(Canon(*step), Canon(*conf)) << shape;
    EXPECT_EQ(step->counted, dflt->counted) << shape;
    EXPECT_EQ(step->count, dflt->count) << shape;
    EXPECT_EQ(Canon(*step), Canon(*dflt)) << shape;
    return std::move(step).value();
  }

  std::unique_ptr<GraphEngine> engine_;
  std::unique_ptr<QuerySession> session_;
  VertexId p_[5];
  VertexId post_ = 0;
  VertexId tag_ = 0;
  EdgeId knows0_ = 0;
  CancelToken never_;
};

TEST_P(PlanEquivalenceTest, Table2ReadAndTraversalShapes) {
  const std::string knows = "knows";
  // The Q.8-Q.35 substrate expressible in the fluent API, plus the exact
  // shapes the conflated planner rewrites, with their fixture goldens.
  struct GoldenCount {
    const char* shape;
    Traversal t;
    uint64_t expect;
  };
  std::vector<GoldenCount> counted = {
      {"Q8 g.V.count", Traversal::V().Count(), 7},
      {"Q9 g.E.count", Traversal::E().Count(), 6},
      {"Q10 g.E.label.dedup", Traversal::E().Label().Dedup().Count(), 3},
      {"Q11 g.V.has(name,cyd)",
       Traversal::V().Has("name", PropertyValue("cyd")).Count(), 1},
      {"Q11 g.V.has miss",
       Traversal::V().Has("name", PropertyValue("nobody")).Count(), 0},
      {"Q13 g.E.hasLabel(knows)", Traversal::E().HasLabel("knows").Count(),
       4},
      {"Q14 g.V(id)", Traversal::V(p_[2]).Count(), 1},
      {"Q15 g.E(id)", Traversal::E(knows0_).Count(), 1},
      {"g.V.hasLabel(person)", Traversal::V().HasLabel("person").Count(), 5},
      {"Q23 v.out", Traversal::V(p_[0]).Out().Count(), 2},
      {"Q22 v.in", Traversal::V(p_[2]).In().Count(), 2},
      {"Q24 v.both(knows)", Traversal::V(p_[1]).Both(knows).Count(), 2},
      {"Q26 v.outE.label.dedup",
       Traversal::V(post_).OutE().Label().Dedup().Count(), 2},
      {"Q25 v.inE.label.dedup",
       Traversal::V(p_[1]).InE().Label().Dedup().Count(), 2},
      {"Q27 v.bothE.label.dedup",
       Traversal::V(p_[2]).BothE().Label().Dedup().Count(), 1},
      {"Q28 degree(in)>=2",
       Traversal::V().WhereDegreeAtLeast(Direction::kIn, 2).Count(), 2},
      {"Q29 degree(out)>=2",
       Traversal::V().WhereDegreeAtLeast(Direction::kOut, 2).Count(), 2},
      {"Q30 degree(both)>=3",
       Traversal::V().WhereDegreeAtLeast(Direction::kBoth, 3).Count(), 2},
      {"Q31 g.V.out.dedup", Traversal::V().Out().Dedup().Count(), 4},
      {"2-hop out.out.dedup",
       Traversal::V(p_[0]).Out().Out().Dedup().Count(), 2},
      {"edge endpoints outV",
       Traversal::E().HasLabel(knows).OutV().Dedup().Count(), 3},
      {"edge endpoints inV",
       Traversal::E().HasLabel(knows).InV().Dedup().Count(), 3},
      {"values(name)", Traversal::V().Values("name").Dedup().Count(), 5},
      {"limit(3)", Traversal::V().Limit(3).Count(), 3},
      {"limit(0)", Traversal::V().Limit(0).Count(), 0},
      {"has+limit",
       Traversal::V().Has("name", PropertyValue("cyd")).Limit(5).Count(), 1},
  };
  for (auto& g : counted) {
    TraversalOutput out = RequirePolicyEquivalence(g.t, g.shape);
    EXPECT_TRUE(out.counted) << g.shape;
    EXPECT_EQ(out.count, g.expect) << g.shape;
  }

  // Non-counted shapes: multiset equivalence is the assertion; spot-check
  // two result sets against the fixture.
  std::vector<std::pair<const char*, Traversal>> uncounted = {
      {"g.V", Traversal::V()},
      {"g.E", Traversal::E()},
      {"g.V.has(name,cyd)",
       Traversal::V().Has("name", PropertyValue("cyd"))},
      {"g.V.out.dedup", Traversal::V().Out().Dedup()},
      {"g.E.hasLabel(knows)", Traversal::E().HasLabel("knows")},
      {"v.both", Traversal::V(p_[1]).Both()},
      {"v.outE(knows)", Traversal::V(p_[0]).OutE(knows)},
      {"labels", Traversal::V(post_).OutE().Label()},
      {"values", Traversal::V(p_[3]).Values("name")},
      // Order-sensitive subsets: the Limit guard keeps the rewrites off,
      // so both policies must select the exact same elements.
      {"out.dedup.limit", Traversal::V().Out().Dedup().Limit(1)},
      {"has.limit",
       Traversal::V().Has("name", PropertyValue("ada")).Limit(1)},
  };
  for (auto& [shape, t] : uncounted) RequirePolicyEquivalence(t, shape);

  TraversalOutput cyd = RequirePolicyEquivalence(
      Traversal::V().Has("name", PropertyValue("cyd")), "golden has");
  ASSERT_EQ(cyd.rows.size(), 1u);
  EXPECT_EQ(cyd.rows[0], p_[2]);

  TraversalOutput q31 =
      RequirePolicyEquivalence(Traversal::V().Out().Dedup(), "golden q31");
  std::set<uint64_t> targets(q31.rows.begin(), q31.rows.end());
  EXPECT_EQ(targets, (std::set<uint64_t>{p_[1], p_[2], p_[3], tag_}));
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, PlanEquivalenceTest,
    ::testing::Values("arango", "blaze", "neo19", "neo30", "orient",
                      "sparksee", "sqlg", "titan05", "titan10"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// --- Lowering goldens (engine-independent) ---------------------------------

TEST(PlanExplainTest, StepWiseLowersStepsOneToOne) {
  EXPECT_EQ(Traversal::V()
                .Has("name", PropertyValue("x"))
                .Count()
                .ExplainPlan(QueryExecution::kStepWise)
                .value(),
            "CountSink\n"
            "  PropertyFilter(name == x)\n"
            "    VertexScan\n");
  EXPECT_EQ(Traversal::V()
                .Out()
                .Dedup()
                .Count()
                .ExplainPlan(QueryExecution::kStepWise)
                .value(),
            "CountSink\n"
            "  Dedup\n"
            "    Expand(out)\n"
            "      VertexScan\n");
  EXPECT_EQ(Traversal::E()
                .HasLabel("knows")
                .ExplainPlan(QueryExecution::kStepWise)
                .value(),
            "LabelFilter(label=knows)\n"
            "  EdgeScan\n");
  EXPECT_EQ(Traversal::V(7)
                .OutE(std::string("knows"))
                .Label()
                .Dedup()
                .ExplainPlan(QueryExecution::kStepWise)
                .value(),
            "Dedup\n"
            "  LabelMap\n"
            "    ExpandE(out, label=knows)\n"
            "      VertexLookup(id=7)\n");
  EXPECT_EQ(Traversal::V()
                .WhereDegreeAtLeast(Direction::kBoth, 3)
                .Limit(10)
                .ExplainPlan(QueryExecution::kStepWise)
                .value(),
            "Limit(10)\n"
            "  DegreeFilter(both >= 3)\n"
            "    VertexScan\n");
}

TEST(PlanExplainTest, ConflatedRewritesFireOnlyForConflatedPolicy) {
  // Has pushdown.
  Traversal has = Traversal::V().Has("name", PropertyValue("x"));
  EXPECT_EQ(has.ExplainPlan(QueryExecution::kConflated).value(),
            "PropertyIndexScan(name == x)\n");
  EXPECT_EQ(has.ExplainPlan(QueryExecution::kStepWise).value(),
            "PropertyFilter(name == x)\n"
            "  VertexScan\n");

  // Q.31 distinct-targets pushdown, with a streaming trailing count.
  Traversal q31 = Traversal::V().Out().Dedup().Count();
  EXPECT_EQ(q31.ExplainPlan(QueryExecution::kConflated).value(),
            "CountSink\n"
            "  DistinctEdgeTargetScan\n");
  EXPECT_EQ(q31.ExplainPlan(QueryExecution::kStepWise).value(),
            "CountSink\n"
            "  Dedup\n"
            "    Expand(out)\n"
            "      VertexScan\n");

  // Edges-by-label pushdown.
  Traversal by_label = Traversal::E().HasLabel("knows");
  EXPECT_EQ(by_label.ExplainPlan(QueryExecution::kConflated).value(),
            "EdgeLabelScan(label=knows)\n");

  // A label-restricted out() is not the Q.31 pattern: no rewrite fires
  // even under the conflated policy.
  EXPECT_EQ(Traversal::V()
                .Out(std::string("knows"))
                .Dedup()
                .ExplainPlan(QueryExecution::kConflated)
                .value(),
            "Dedup\n"
            "  Expand(out, label=knows)\n"
            "    VertexScan\n");

  // A Limit in the suffix selects a subset by order, and a rewritten
  // source emits in native order — the rewrites stay off so both
  // policies pick the same subset.
  EXPECT_EQ(Traversal::V()
                .Out()
                .Dedup()
                .Limit(1)
                .ExplainPlan(QueryExecution::kConflated)
                .value(),
            "Limit(1)\n"
            "  Dedup\n"
            "    Expand(out)\n"
            "      VertexScan\n");
  EXPECT_EQ(Traversal::V()
                .Has("name", PropertyValue("x"))
                .Limit(2)
                .ExplainPlan(QueryExecution::kConflated)
                .value(),
            "Limit(2)\n"
            "  PropertyFilter(name == x)\n"
            "    VertexScan\n");

  // Steps after a terminal Count() are unreachable and dropped.
  EXPECT_EQ(Traversal::V()
                .Count()
                .Dedup()
                .ExplainPlan(QueryExecution::kStepWise)
                .value(),
            "CountSink\n"
            "  VertexScan\n");
}

TEST(PlanPolicyTest, EngineContractsMatchTable1) {
  const std::set<std::string> conflated = {"orient", "sqlg", "titan05",
                                           "titan10"};
  RegisterBuiltinEngines();
  for (const std::string& name : EngineRegistry::Instance().Names()) {
    auto engine = OpenEngine(name, EngineOptions{});
    ASSERT_TRUE(engine.ok()) << name;
    EngineInfo info = (*engine)->info();
    QueryExecution expect = conflated.count(name) > 0
                                ? QueryExecution::kConflated
                                : QueryExecution::kStepWise;
    EXPECT_EQ(info.query_execution, expect) << name;
    EXPECT_EQ(Traversal::PolicyFor(**engine), expect) << name;
    // The Table 1 cell survives as a display string alongside the enum.
    EXPECT_FALSE(info.query_execution_display.empty()) << name;
  }
}

// --- Execution-policy behavior ---------------------------------------------

class PlanBehaviorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine = OpenEngine("neo19", EngineOptions{});
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).value();
    session_ = engine_->CreateSession();
    std::vector<VertexId> v;
    for (int i = 0; i < 100; ++i) {
      v.push_back(engine_->AddVertex("n", {}).value());
    }
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          engine_->AddEdge(v[i], v[(i * 7 + 1) % 100], "l", {}).ok());
    }
  }
  std::unique_ptr<GraphEngine> engine_;
  std::unique_ptr<QuerySession> session_;
  CancelToken never_;
};

TEST_F(PlanBehaviorTest, LimitStopsSourceScanUnderConflatedPolicy) {
  Traversal t = Traversal::V().Limit(5);

  PlanStats conflated_stats;
  auto conflated = t.Lower(QueryExecution::kConflated);
  ASSERT_TRUE(conflated.ok());
  auto out = conflated->Run(*engine_, *session_, never_, &conflated_stats);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->rows.size(), 5u);
  // The fused pipeline propagates the limit into the scan: the source
  // emitted (= the engine visited) no more than the limit.
  ASSERT_EQ(conflated_stats.rows_out.size(), 2u);
  EXPECT_LE(conflated_stats.rows_out[0], 5u);
  EXPECT_EQ(conflated_stats.barriers, 0u);

  // The step-wise policy is the TinkerPop behavior the paper measures:
  // the scan materializes every vertex before the limit runs.
  PlanStats step_stats;
  auto step = t.Lower(QueryExecution::kStepWise);
  ASSERT_TRUE(step.ok());
  auto step_out = step->Run(*engine_, *session_, never_, &step_stats);
  ASSERT_TRUE(step_out.ok());
  EXPECT_EQ(step_out->rows.size(), 5u);
  EXPECT_EQ(step_stats.rows_out[0], 100u);
  EXPECT_EQ(step_stats.peak_frontier_rows, 100u);
  EXPECT_EQ(step_stats.barriers, 2u);
}

TEST_F(PlanBehaviorTest, StreamingTrailingCountNeverMaterializes) {
  Traversal t = Traversal::V().Out().Dedup().Count();

  PlanStats conflated_stats;
  auto conflated = t.Lower(QueryExecution::kConflated);
  ASSERT_TRUE(conflated.ok());
  auto conf_out = conflated->Run(*engine_, *session_, never_, &conflated_stats);
  ASSERT_TRUE(conf_out.ok());
  EXPECT_TRUE(conf_out->counted);
  EXPECT_EQ(conflated_stats.barriers, 0u);
  EXPECT_EQ(conflated_stats.peak_frontier_rows, 0u);
  EXPECT_EQ(conflated_stats.peak_frontier_bytes, 0u);

  PlanStats step_stats;
  auto step = t.Lower(QueryExecution::kStepWise);
  ASSERT_TRUE(step.ok());
  auto step_out = step->Run(*engine_, *session_, never_, &step_stats);
  ASSERT_TRUE(step_out.ok());
  EXPECT_EQ(step_out->count, conf_out->count);
  // The step-wise barriers really materialized the full expansion.
  EXPECT_EQ(step_stats.peak_frontier_rows, 100u);
  EXPECT_GT(step_stats.barriers, 0u);

  // A plan is reusable: a second run resets operator state.
  auto again = conflated->Run(*engine_, *session_, never_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->count, conf_out->count);
}

TEST_F(PlanBehaviorTest, CancelledPlanFailsUnderBothPolicies) {
  CancelToken cancelled;
  cancelled.Cancel();
  for (QueryExecution policy :
       {QueryExecution::kStepWise, QueryExecution::kConflated}) {
    auto plan = Traversal::V().Out().Dedup().Lower(policy);
    ASSERT_TRUE(plan.ok());
    auto r = plan->Run(*engine_, *session_, cancelled);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsDeadlineExceeded());
  }
}

}  // namespace
}  // namespace gdbmicro
