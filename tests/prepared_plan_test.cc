// Prepared-plan conformance: a plan lowered once via Traversal::Prepare
// must return results identical to the rebuild-every-time baseline
// (Traversal::Execute per iteration) — (a) run repeatedly from one
// session, (b) run from concurrent sessions sharing the one prepared
// plan, (c) with parameters rebound between runs — on all nine engines.
// Both cost-model modes are covered by the two ctest legs (the second CI
// leg sets GDBMICRO_COST_MODEL=1, which OpenEngine honors here).
//
// Plus the allocation contract: after warmup, repeated prepared runs of
// a point query allocate ~nothing — the per-run state lives in the
// session's PlanScratch and is reused, while the rebuild path pays the
// traversal build + lowering allocations every iteration.

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/graph/registry.h"
#include "src/query/traversal.h"

// --- global allocation counter ---------------------------------------------
// Counts every operator-new hit in the process (same technique as
// bench_micro_adjacency). Atomic/relaxed because the concurrent-session
// test allocates from several threads; the assertions only read it
// around single-threaded sections.

#include <atomic>

static std::atomic<uint64_t> g_allocs{0};

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// The replacement operator new above allocates with malloc, so freeing
// here is the matched deallocation; GCC's -Wmismatched-new-delete cannot
// see through the replacement when inlining gtest internals.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace gdbmicro {
namespace {

using query::Bound;
using query::PlanParams;
using query::PreparedPlan;
using query::Traversal;

// Same small social graph as plan_test, so goldens are comparable:
//
//   p0 -knows-> p1 -knows-> p2 -knows-> p3     (chain)
//   p0 -knows-> p2                              (shortcut)
//   p4                                          (isolated person)
//   post0 -hasCreator-> p1, post0 -hasTag-> t0
class PreparedPlanTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    auto engine = OpenEngine(GetParam(), EngineOptions{});
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();
    session_ = engine_->CreateSession();

    auto add_person = [&](const char* name) {
      PropertyMap props;
      props.emplace_back("name", PropertyValue(name));
      return engine_->AddVertex("person", props).value();
    };
    p_[0] = add_person("ada");
    p_[1] = add_person("bob");
    p_[2] = add_person("cyd");
    p_[3] = add_person("dee");
    p_[4] = add_person("eve");
    knows0_ = engine_->AddEdge(p_[0], p_[1], "knows", {}).value();
    ASSERT_TRUE(engine_->AddEdge(p_[1], p_[2], "knows", {}).ok());
    ASSERT_TRUE(engine_->AddEdge(p_[2], p_[3], "knows", {}).ok());
    ASSERT_TRUE(engine_->AddEdge(p_[0], p_[2], "knows", {}).ok());
    post_ = engine_->AddVertex("post", {}).value();
    tag_ = engine_->AddVertex("tag", {}).value();
    ASSERT_TRUE(engine_->AddEdge(post_, p_[1], "hasCreator", {}).ok());
    ASSERT_TRUE(engine_->AddEdge(post_, tag_, "hasTag", {}).ok());
  }

  /// One parameterized shape: a prepared (bound) form, the equivalent
  /// rebuild-every-time form for a concrete parameter pick, and the
  /// per-iteration parameter stream.
  struct Shape {
    const char* name;
    Traversal prepared;                           // with Bound{} slots
    std::function<Traversal(const PlanParams&)> rebuild;
    std::vector<PlanParams> iterations;
  };

  std::vector<Shape> Shapes() {
    auto id_params = [&](std::initializer_list<uint64_t> ids) {
      std::vector<PlanParams> out;
      for (uint64_t id : ids) {
        PlanParams p;
        p.id = id;
        out.push_back(std::move(p));
      }
      return out;
    };
    std::vector<Shape> shapes;
    shapes.push_back(
        {"V(?).count", Traversal::V(Bound{}).Count(),
         [](const PlanParams& p) { return Traversal::V(p.id).Count(); },
         id_params({p_[0], p_[2], p_[4], post_, tag_, 999999})});
    shapes.push_back(
        {"E(?).count", Traversal::E(Bound{}).Count(),
         [](const PlanParams& p) { return Traversal::E(p.id).Count(); },
         id_params({knows0_, 999999})});
    shapes.push_back(
        {"V(?).out.count", Traversal::V(Bound{}).Out().Count(),
         [](const PlanParams& p) { return Traversal::V(p.id).Out().Count(); },
         id_params({p_[0], p_[1], p_[2], p_[4], post_})});
    shapes.push_back(
        {"V(?).bothE.label.dedup",
         Traversal::V(Bound{}).BothE().Label().Dedup(),
         [](const PlanParams& p) {
           return Traversal::V(p.id).BothE().Label().Dedup();
         },
         id_params({p_[1], p_[2], post_, p_[4]})});
    {
      Shape has{"V().has(name,?).count",
                Traversal::V().Has("name", Bound{}).Count(),
                [](const PlanParams& p) {
                  return Traversal::V().Has("name", p.value).Count();
                },
                {}};
      for (const char* name : {"ada", "cyd", "nobody", "cyd"}) {
        PlanParams p;
        p.value = PropertyValue(name);
        has.iterations.push_back(std::move(p));
      }
      shapes.push_back(std::move(has));
    }
    {
      Shape both{"V(?).both(?).count",
                 Traversal::V(Bound{}).Both(Bound{}).Count(),
                 [](const PlanParams& p) {
                   return Traversal::V(p.id).Both(p.label).Count();
                 },
                 {}};
      struct Pick {
        uint64_t id;
        const char* label;
      };
      for (const Pick& pick : {Pick{0, "knows"}, Pick{0, "hasTag"},
                               Pick{0, "nolabel"}}) {
        PlanParams p;
        p.id = p_[1];
        p.label = pick.label;
        both.iterations.push_back(std::move(p));
      }
      shapes.push_back(std::move(both));
    }
    return shapes;
  }

  /// The rebuild-every-time golden for one (shape, params) pick.
  uint64_t Golden(const Shape& shape, const PlanParams& params,
                  QuerySession& session) {
    auto r = shape.rebuild(params).ExecuteCount(*engine_, session, never_);
    EXPECT_TRUE(r.ok()) << shape.name << ": " << r.status();
    return r.ok() ? *r : ~0ULL;
  }

  std::unique_ptr<GraphEngine> engine_;
  std::unique_ptr<QuerySession> session_;
  VertexId p_[5];
  VertexId post_ = 0;
  VertexId tag_ = 0;
  EdgeId knows0_ = 0;
  CancelToken never_;
};

TEST_P(PreparedPlanTest, RepeatedRunsAndReboundParamsMatchRebuildGolden) {
  for (auto& shape : Shapes()) {
    auto prepared = shape.prepared.Prepare(*engine_);
    ASSERT_TRUE(prepared.ok()) << shape.name << ": " << prepared.status();
    // (c) rebound parameters across the whole stream, and (a) every pick
    // run twice in the same session: the second run must see fully reset
    // per-run state (dedup sets, counters) through the scratch epochs.
    for (const PlanParams& params : shape.iterations) {
      uint64_t golden = Golden(shape, params, *session_);
      for (int repeat = 0; repeat < 2; ++repeat) {
        auto n = prepared->RunCount(*session_, never_, params);
        ASSERT_TRUE(n.ok()) << shape.name << ": " << n.status();
        EXPECT_EQ(*n, golden) << shape.name << " repeat " << repeat;
      }
    }
    // Full result (not just cardinality) equivalence for the value shape.
    for (const PlanParams& params : shape.iterations) {
      auto out = prepared->Run(*session_, never_, params);
      ASSERT_TRUE(out.ok()) << shape.name;
      EXPECT_EQ(out->counted ? out->count : out->rows.size(),
                Golden(shape, params, *session_))
          << shape.name;
    }
  }
}

TEST_P(PreparedPlanTest, OnePreparedPlanServesConcurrentSessions) {
  // (b) one prepared plan, 4 client sessions on 4 threads, every thread
  // running the full parameter stream of every shape. Each thread only
  // records; assertions happen after the join.
  auto shapes = Shapes();
  std::vector<std::unique_ptr<PreparedPlan>> prepared;
  std::vector<std::vector<uint64_t>> goldens(shapes.size());
  for (size_t s = 0; s < shapes.size(); ++s) {
    auto plan = shapes[s].prepared.Prepare(*engine_);
    ASSERT_TRUE(plan.ok()) << shapes[s].name;
    prepared.push_back(
        std::make_unique<PreparedPlan>(std::move(plan).value()));
    for (const PlanParams& params : shapes[s].iterations) {
      goldens[s].push_back(Golden(shapes[s], params, *session_));
    }
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  std::vector<std::vector<uint64_t>> results(kThreads);
  std::vector<Status> failures(kThreads);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::unique_ptr<QuerySession> session = engine_->CreateSession();
        for (int round = 0; round < kRounds; ++round) {
          for (size_t s = 0; s < shapes.size(); ++s) {
            for (const PlanParams& params : shapes[s].iterations) {
              auto n = prepared[s]->RunCount(*session, never_, params);
              if (!n.ok()) {
                failures[t] = n.status();
                return;
              }
              if (round == 0) results[t].push_back(*n);
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  std::vector<uint64_t> expected;
  for (const auto& per_shape : goldens) {
    expected.insert(expected.end(), per_shape.begin(), per_shape.end());
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].ok()) << "thread " << t << ": " << failures[t];
    EXPECT_EQ(results[t], expected) << "thread " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, PreparedPlanTest,
    ::testing::Values("arango", "blaze", "neo19", "neo30", "orient",
                      "sparksee", "sqlg", "titan05", "titan10"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// --- Allocation contract ----------------------------------------------------

TEST(PreparedPlanAllocationTest, SteadyStateRunsAllocateAlmostNothing) {
  // Propertyless graph on the record-chain engine whose visitors are
  // allocation-free, so every remaining allocation is the query layer's.
  auto engine = OpenEngine("neo19", EngineOptions{}).value();
  std::vector<VertexId> v;
  for (int i = 0; i < 200; ++i) {
    v.push_back(engine->AddVertex("n", {}).value());
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine->AddEdge(v[static_cast<size_t>(i)],
                                v[static_cast<size_t>((i * 7 + 1) % 200)],
                                "l", {})
                    .ok());
  }
  auto session = engine->CreateSession();
  CancelToken never;

  auto prepared = Traversal::V(Bound{}).Out().Count().Prepare(*engine);
  ASSERT_TRUE(prepared.ok());

  constexpr int kIterations = 400;
  PlanParams params;
  auto run_prepared = [&](int iterations) {
    uint64_t hops = 0;
    for (int i = 0; i < iterations; ++i) {
      params.id = v[static_cast<size_t>(i) % v.size()];
      auto n = prepared->RunCount(*session, never, params);
      if (n.ok()) hops += *n;
    }
    return hops;
  };

  run_prepared(50);  // warmup: scratch slots and buffers reach capacity
  uint64_t before = g_allocs;
  uint64_t hops = run_prepared(kIterations);
  uint64_t prepared_allocs = g_allocs - before;

  // Rebuild-every-time baseline over the same picks.
  before = g_allocs;
  uint64_t rebuilt_hops = 0;
  for (int i = 0; i < kIterations; ++i) {
    auto n = Traversal::V(v[static_cast<size_t>(i) % v.size()])
                 .Out()
                 .Count()
                 .ExecuteCount(*engine, *session, never);
    if (n.ok()) rebuilt_hops += *n;
  }
  uint64_t rebuilt_allocs = g_allocs - before;

  EXPECT_EQ(hops, rebuilt_hops);
  EXPECT_GT(hops, 0u);
  // The prepared path's steady state is allocation-free: no lowering, no
  // operator chain, no per-row strings, reused scratch. Allow a whisker
  // of slack for engine-internal noise rather than asserting a hard 0.
  EXPECT_LE(prepared_allocs, static_cast<uint64_t>(kIterations) / 10)
      << "prepared allocs/iter = "
      << static_cast<double>(prepared_allocs) / kIterations;
  // And it must beat the rebuild path by a wide margin (which pays the
  // step vector, the operator chain, and the lowering every iteration).
  EXPECT_LT(prepared_allocs * 10, rebuilt_allocs);
}

// --- Cost-based re-pricing ---------------------------------------------------

// With statistics present, a prepared V().has(tier, ?) is priced at the
// key-wide average; rebinding a value whose estimated cardinality falls
// in a different selectivity class transparently switches lowerings.
// Whatever plan PlanFor picks, every value must return the rebuild-
// golden results — re-pricing is a performance decision, never a
// correctness one.
TEST(PreparedPlanRepricingTest, RebindingAcrossSelectivityClassesStaysCorrect) {
  // Property "tier" spans three selectivity classes: hot ~ 1200 rows
  // (class 3), mid ~ 20 (class 1), rare = 2 (class 0).
  GraphData data;
  data.name = "repricing";
  for (int i = 0; i < 1222; ++i) {
    GraphData::Vertex v;
    v.label = "n";
    const char* tier = i < 1200 ? "hot" : (i < 1220 ? "mid" : "rare");
    v.properties.emplace_back("tier", PropertyValue(tier));
    data.vertices.push_back(std::move(v));
  }
  for (uint64_t i = 0; i + 1 < 1222; i += 2) {
    GraphData::Edge e;
    e.src = i;
    e.dst = i + 1;
    e.label = "pairs";
    data.edges.push_back(std::move(e));
  }
  CancelToken never;
  const char* kTiers[] = {"hot", "rare", "mid", "hot", "nobody", "rare"};

  for (const char* name : {"arango", "blaze", "neo19", "neo30", "orient",
                           "sparksee", "sqlg", "titan05", "titan10"}) {
    auto engine = OpenEngine(name, EngineOptions{});
    ASSERT_TRUE(engine.ok()) << name;
    ASSERT_TRUE((*engine)->BulkLoad(data).ok()) << name;
    auto session = (*engine)->CreateSession();

    auto prepared =
        Traversal::V().Has("tier", Bound{}).Count().Prepare(**engine);
    ASSERT_TRUE(prepared.ok()) << name;

    bool repriced = false;
    for (int round = 0; round < 2; ++round) {  // 2nd round hits the cache
      for (const char* tier : kTiers) {
        PlanParams params;
        params.value = PropertyValue(tier);
        if (&prepared->PlanFor(params) != &prepared->plan()) repriced = true;
        auto n = prepared->RunCount(*session, never, params);
        ASSERT_TRUE(n.ok()) << name << "/" << tier;
        auto golden = Traversal::V()
                          .Has("tier", PropertyValue(tier))
                          .Count()
                          .ExecuteCount(**engine, *session, never);
        ASSERT_TRUE(golden.ok()) << name << "/" << tier;
        EXPECT_EQ(*n, *golden) << name << "/" << tier;
      }
    }
    // The class spread guarantees at least one rebind left the base
    // class, so the per-class cache must have been exercised.
    EXPECT_TRUE(repriced) << name;

    // Concurrent rebinding across classes races only on the cache's
    // construction mutex; results stay correct (TSan leg covers this).
    constexpr int kThreads = 4;
    std::vector<Status> failures(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::unique_ptr<QuerySession> worker = (*engine)->CreateSession();
        for (int i = 0; i < 16; ++i) {
          PlanParams params;
          params.value = PropertyValue(kTiers[(t + i) % 6]);
          auto n = prepared->RunCount(*worker, never, params);
          if (!n.ok()) {
            failures[static_cast<size_t>(t)] = n.status();
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (const Status& s : failures) EXPECT_TRUE(s.ok()) << name;
  }
}

}  // namespace
}  // namespace gdbmicro
