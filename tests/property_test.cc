// Property-based tests: long random operation sequences applied
// simultaneously to every engine and to a simple in-memory reference
// model; after every batch of operations the observable state (counts,
// lookups, adjacency, search results) must match the model exactly.
// This is the strongest conformance check in the suite — it exercises
// interleavings (delete-then-reuse, property churn on shared chains,
// cascades) that the unit tests cannot enumerate.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/graph/registry.h"
#include "src/util/hash.h"
#include "src/util/rng.h"

namespace gdbmicro {
namespace {

/// The reference model: the obvious std-container implementation of the
/// property-graph semantics.
class ModelGraph {
 public:
  struct Vertex {
    std::string label;
    PropertyMap props;
  };
  struct Edge {
    VertexId src, dst;
    std::string label;
    PropertyMap props;
  };

  uint64_t AddVertex(std::string label, PropertyMap props) {
    uint64_t id = next_++;
    vertices_[id] = Vertex{std::move(label), std::move(props)};
    return id;
  }

  uint64_t AddEdge(uint64_t src, uint64_t dst, std::string label,
                   PropertyMap props) {
    uint64_t id = next_++;
    edges_[id] = Edge{src, dst, std::move(label), std::move(props)};
    return id;
  }

  void RemoveEdge(uint64_t e) { edges_.erase(e); }

  void RemoveVertex(uint64_t v) {
    vertices_.erase(v);
    for (auto it = edges_.begin(); it != edges_.end();) {
      if (it->second.src == v || it->second.dst == v) {
        it = edges_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::multiset<uint64_t> Neighbors(uint64_t v, Direction dir) const {
    std::multiset<uint64_t> out;
    for (const auto& [id, e] : edges_) {
      if (e.src == v && e.dst == v) {
        out.insert(v);  // self-loop: once, in every direction
        continue;
      }
      if ((dir == Direction::kOut || dir == Direction::kBoth) && e.src == v) {
        out.insert(e.dst);
      }
      if ((dir == Direction::kIn || dir == Direction::kBoth) && e.dst == v) {
        out.insert(e.src);
      }
    }
    return out;
  }

  std::set<uint64_t> FindByProp(const std::string& key,
                                const PropertyValue& value) const {
    std::set<uint64_t> out;
    for (const auto& [id, v] : vertices_) {
      const PropertyValue* p = FindProperty(v.props, key);
      if (p != nullptr && *p == value) out.insert(id);
    }
    return out;
  }

  std::map<uint64_t, Vertex> vertices_;
  std::map<uint64_t, Edge> edges_;
  uint64_t next_ = 0;
};

class PropertyChurnTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PropertyChurnTest, RandomOpsMatchReferenceModel) {
  RegisterBuiltinEngines();
  auto engine_or = OpenEngine(GetParam(), EngineOptions{});
  ASSERT_TRUE(engine_or.ok());
  std::unique_ptr<GraphEngine> engine = std::move(engine_or).value();
  std::unique_ptr<QuerySession> session = engine->CreateSession();
  ModelGraph model;
  CancelToken never;
  Rng rng(0xC0FFEE ^ HashBytes(GetParam()));

  // model id -> engine id (engines assign their own ids).
  std::map<uint64_t, VertexId> v_id;
  std::map<uint64_t, EdgeId> e_id;

  const char* kLabels[] = {"alpha", "beta", "gamma"};
  const char* kKeys[] = {"k1", "k2", "k3"};

  auto random_model_vertex = [&]() -> uint64_t {
    if (model.vertices_.empty()) return ~0ULL;
    auto it = model.vertices_.begin();
    std::advance(it, static_cast<long>(rng.Uniform(model.vertices_.size())));
    return it->first;
  };
  auto random_model_edge = [&]() -> uint64_t {
    if (model.edges_.empty()) return ~0ULL;
    auto it = model.edges_.begin();
    std::advance(it, static_cast<long>(rng.Uniform(model.edges_.size())));
    return it->first;
  };
  auto random_value = [&]() -> PropertyValue {
    switch (rng.Uniform(4)) {
      case 0:
        return PropertyValue(static_cast<int64_t>(rng.Uniform(5)));
      case 1:
        return PropertyValue(rng.Chance(0.5));
      case 2:
        return PropertyValue(static_cast<double>(rng.Uniform(8)) / 2.0);
      default:
        return PropertyValue(std::string(1 + rng.Uniform(6), 'x'));
    }
  };

  const int kOps = 600;
  for (int op = 0; op < kOps; ++op) {
    switch (rng.Uniform(10)) {
      case 0:
      case 1: {  // add vertex
        PropertyMap props;
        if (rng.Chance(0.7)) {
          props.emplace_back(kKeys[rng.Uniform(3)], random_value());
        }
        const char* label = kLabels[rng.Uniform(3)];
        uint64_t m = model.AddVertex(label, props);
        auto id = engine->AddVertex(label, props);
        ASSERT_TRUE(id.ok());
        v_id[m] = *id;
        break;
      }
      case 2:
      case 3:
      case 4: {  // add edge
        uint64_t a = random_model_vertex();
        uint64_t b = random_model_vertex();
        if (a == ~0ULL || b == ~0ULL) break;
        PropertyMap props;
        if (rng.Chance(0.4)) {
          props.emplace_back(kKeys[rng.Uniform(3)], random_value());
        }
        const char* label = kLabels[rng.Uniform(3)];
        uint64_t m = model.AddEdge(a, b, label, props);
        auto id = engine->AddEdge(v_id[a], v_id[b], label, props);
        ASSERT_TRUE(id.ok());
        e_id[m] = *id;
        break;
      }
      case 5: {  // set vertex property
        uint64_t m = random_model_vertex();
        if (m == ~0ULL) break;
        const char* key = kKeys[rng.Uniform(3)];
        PropertyValue value = random_value();
        SetProperty(&model.vertices_[m].props, key, value);
        ASSERT_TRUE(engine->SetVertexProperty(v_id[m], key, value).ok());
        break;
      }
      case 6: {  // remove vertex property
        uint64_t m = random_model_vertex();
        if (m == ~0ULL) break;
        const char* key = kKeys[rng.Uniform(3)];
        bool existed = EraseProperty(&model.vertices_[m].props, key);
        Status s = engine->RemoveVertexProperty(v_id[m], key);
        ASSERT_EQ(s.ok(), existed) << s;
        break;
      }
      case 7: {  // remove edge
        uint64_t m = random_model_edge();
        if (m == ~0ULL) break;
        model.RemoveEdge(m);
        ASSERT_TRUE(engine->RemoveEdge(e_id[m]).ok());
        e_id.erase(m);
        break;
      }
      case 8: {  // remove vertex (cascades)
        uint64_t m = random_model_vertex();
        if (m == ~0ULL) break;
        // Track which edges die with it.
        for (auto it = model.edges_.begin(); it != model.edges_.end(); ++it) {
          if (it->second.src == m || it->second.dst == m) {
            e_id.erase(it->first);
          }
        }
        model.RemoveVertex(m);
        ASSERT_TRUE(engine->RemoveVertex(v_id[m]).ok());
        v_id.erase(m);
        break;
      }
      case 9: {  // set edge property
        uint64_t m = random_model_edge();
        if (m == ~0ULL) break;
        const char* key = kKeys[rng.Uniform(3)];
        PropertyValue value = random_value();
        SetProperty(&model.edges_[m].props, key, value);
        ASSERT_TRUE(engine->SetEdgeProperty(e_id[m], key, value).ok());
        break;
      }
    }

    // Periodic deep check.
    if (op % 50 == 49) {
      ASSERT_EQ(engine->CountVertices(*session, never).value(),
                model.vertices_.size());
      ASSERT_EQ(engine->CountEdges(*session, never).value(), model.edges_.size());
      // Adjacency of five random vertices, all directions.
      for (int probe = 0; probe < 5; ++probe) {
        uint64_t m = random_model_vertex();
        if (m == ~0ULL) break;
        for (Direction dir :
             {Direction::kIn, Direction::kOut, Direction::kBoth}) {
          auto got = engine->NeighborsOf(*session, v_id[m], dir, nullptr, never);
          ASSERT_TRUE(got.ok());
          std::multiset<uint64_t> got_model_ids;
          for (VertexId g : *got) {
            // Reverse-translate engine id -> model id.
            bool found = false;
            for (const auto& [mm, ee] : v_id) {
              if (ee == g) {
                got_model_ids.insert(mm);
                found = true;
                break;
              }
            }
            ASSERT_TRUE(found) << "engine returned unknown vertex";
          }
          ASSERT_EQ(got_model_ids, model.Neighbors(m, dir))
              << GetParam() << " op " << op << " dir "
              << DirectionToString(dir);
        }
      }
      // Property search.
      const char* key = kKeys[rng.Uniform(3)];
      PropertyValue value = random_value();
      auto found = engine->FindVerticesByProperty(*session, key, value, never);
      ASSERT_TRUE(found.ok());
      std::set<uint64_t> got_models;
      for (VertexId g : *found) {
        for (const auto& [mm, ee] : v_id) {
          if (ee == g) got_models.insert(mm);
        }
      }
      ASSERT_EQ(got_models, model.FindByProp(key, value));
      // Full vertex materialization of one random vertex.
      uint64_t m = random_model_vertex();
      if (m != ~0ULL) {
        auto rec = engine->GetVertex(*session, v_id[m]);
        ASSERT_TRUE(rec.ok());
        EXPECT_EQ(rec->label, model.vertices_[m].label);
        // Property multiset equality (order may differ).
        auto sorted = [](PropertyMap props) {
          std::sort(props.begin(), props.end(),
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });
          return props;
        };
        EXPECT_EQ(sorted(rec->properties),
                  sorted(model.vertices_[m].props));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, PropertyChurnTest,
    ::testing::Values("arango", "blaze", "neo19", "neo30", "orient",
                      "sparksee", "sqlg", "titan05", "titan10"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace gdbmicro
