// Tests for the Gremlin-style traversal machine and the BFS/shortest-path
// algorithms, parameterized across all engines: every engine must produce
// identical query results on the same graph.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/graph/registry.h"
#include "src/query/algorithms.h"
#include "src/query/traversal.h"

namespace gdbmicro {
namespace {

using query::BreadthFirst;
using query::ShortestPath;
using query::Traversal;

// Fixture builds a known small social graph:
//
//   p0 -knows-> p1 -knows-> p2 -knows-> p3     (chain)
//   p0 -knows-> p2                              (shortcut)
//   p4                                          (isolated person)
//   post0 -hasCreator-> p1, post0 -hasTag-> t0
class QueryTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    RegisterBuiltinEngines();
    auto engine = OpenEngine(GetParam(), EngineOptions{});
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();
    session_ = engine_->CreateSession();

    auto add_person = [&](const char* name) {
      PropertyMap props;
      props.emplace_back("name", PropertyValue(name));
      auto v = engine_->AddVertex("person", props);
      EXPECT_TRUE(v.ok());
      return *v;
    };
    p_[0] = add_person("ada");
    p_[1] = add_person("bob");
    p_[2] = add_person("cyd");
    p_[3] = add_person("dee");
    p_[4] = add_person("eve");
    ASSERT_TRUE(engine_->AddEdge(p_[0], p_[1], "knows", {}).ok());
    ASSERT_TRUE(engine_->AddEdge(p_[1], p_[2], "knows", {}).ok());
    ASSERT_TRUE(engine_->AddEdge(p_[2], p_[3], "knows", {}).ok());
    ASSERT_TRUE(engine_->AddEdge(p_[0], p_[2], "knows", {}).ok());
    auto post = engine_->AddVertex("post", {});
    ASSERT_TRUE(post.ok());
    post_ = *post;
    auto tag = engine_->AddVertex("tag", {});
    ASSERT_TRUE(tag.ok());
    tag_ = *tag;
    ASSERT_TRUE(engine_->AddEdge(post_, p_[1], "hasCreator", {}).ok());
    ASSERT_TRUE(engine_->AddEdge(post_, tag_, "hasTag", {}).ok());
  }

  std::unique_ptr<GraphEngine> engine_;
  std::unique_ptr<QuerySession> session_;
  VertexId p_[5];
  VertexId post_ = 0;
  VertexId tag_ = 0;
  CancelToken never_;
};

TEST_P(QueryTest, SourceCounts) {
  EXPECT_EQ(Traversal::V().Count().ExecuteCount(*engine_, *session_, never_).value(), 7u);
  EXPECT_EQ(Traversal::E().Count().ExecuteCount(*engine_, *session_, never_).value(), 6u);
}

TEST_P(QueryTest, HasLabelFilter) {
  EXPECT_EQ(Traversal::V()
                .HasLabel("person")
                .Count()
                .ExecuteCount(*engine_, *session_, never_)
                .value(),
            5u);
  EXPECT_EQ(Traversal::E()
                .HasLabel("knows")
                .Count()
                .ExecuteCount(*engine_, *session_, never_)
                .value(),
            4u);
}

TEST_P(QueryTest, HasPropertyFilter) {
  auto ids = Traversal::V()
                 .Has("name", PropertyValue("cyd"))
                 .ExecuteIds(*engine_, *session_, never_);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, std::vector<uint64_t>{p_[2]});
}

TEST_P(QueryTest, OutInBothHops) {
  auto out = Traversal::V(p_[0]).Out().ExecuteIds(*engine_, *session_, never_);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(std::set<uint64_t>(out->begin(), out->end()),
            (std::set<uint64_t>{p_[1], p_[2]}));

  auto in = Traversal::V(p_[2]).In().ExecuteIds(*engine_, *session_, never_);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(std::set<uint64_t>(in->begin(), in->end()),
            (std::set<uint64_t>{p_[0], p_[1]}));

  auto both = Traversal::V(p_[1]).Both().ExecuteIds(*engine_, *session_, never_);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(std::set<uint64_t>(both->begin(), both->end()),
            (std::set<uint64_t>{p_[0], p_[2], post_}));
}

TEST_P(QueryTest, TwoHopTraversalWithDedup) {
  auto two_hop =
      Traversal::V(p_[0]).Out().Out().Dedup().ExecuteIds(*engine_, *session_, never_);
  ASSERT_TRUE(two_hop.ok());
  // p0 -> {p1, p2} -> {p2, p3} dedup => {p2, p3}
  EXPECT_EQ(std::set<uint64_t>(two_hop->begin(), two_hop->end()),
            (std::set<uint64_t>{p_[2], p_[3]}));
}

TEST_P(QueryTest, EdgeStepsAndLabels) {
  auto labels = Traversal::V(post_)
                    .OutE()
                    .Label()
                    .Dedup()
                    .ExecuteValues(*engine_, *session_, never_);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(std::set<std::string>(labels->begin(), labels->end()),
            (std::set<std::string>{"hasCreator", "hasTag"}));

  auto in_e = Traversal::V(p_[1]).InE().Label().ExecuteValues(*engine_, *session_, never_);
  ASSERT_TRUE(in_e.ok());
  EXPECT_EQ(std::set<std::string>(in_e->begin(), in_e->end()),
            (std::set<std::string>{"knows", "hasCreator"}));
}

TEST_P(QueryTest, LabelRestrictedHop) {
  auto knows_only =
      Traversal::V(p_[1]).Both(std::string("knows")).ExecuteIds(*engine_, *session_, never_);
  ASSERT_TRUE(knows_only.ok());
  EXPECT_EQ(std::set<uint64_t>(knows_only->begin(), knows_only->end()),
            (std::set<uint64_t>{p_[0], p_[2]}));
}

TEST_P(QueryTest, ValuesStep) {
  auto names =
      Traversal::V(p_[3]).Values("name").ExecuteValues(*engine_, *session_, never_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, std::vector<std::string>{"dee"});
  // Missing property drops the traverser.
  auto none = Traversal::V(post_).Values("name").ExecuteValues(*engine_, *session_, never_);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_P(QueryTest, DegreeFilter) {
  // Vertices with bothE degree >= 3: p1 (knows x3? p1: in from p0, out to
  // p2, in hasCreator = 3), p2 (in p1, in p0, out p3 = 3), p0 has 2,
  // post has 2.
  auto ids = Traversal::V()
                 .WhereDegreeAtLeast(Direction::kBoth, 3)
                 .ExecuteIds(*engine_, *session_, never_);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(std::set<uint64_t>(ids->begin(), ids->end()),
            (std::set<uint64_t>{p_[1], p_[2]}));
}

TEST_P(QueryTest, GlobalOutDedup) {
  // Q.31 shape: nodes having an incoming edge.
  auto n = Traversal::V().Out().Dedup().Count().ExecuteCount(*engine_, *session_, never_);
  ASSERT_TRUE(n.ok());
  // Targets: p1, p2, p3, tag  (post and p0 and p4 have no incoming edge).
  EXPECT_EQ(*n, 4u);
}

TEST_P(QueryTest, MissingElementSourceYieldsEmpty) {
  // g.V(id)/g.E(id) on a missing element must yield an empty traverser
  // set on every engine (Gremlin semantics), not propagate NotFound.
  const uint64_t no_such = 0x7FFFFFFFFFFFULL;
  auto v = Traversal::V(no_such).ExecuteIds(*engine_, *session_, never_);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_TRUE(v->empty());
  auto e = Traversal::E(no_such).ExecuteIds(*engine_, *session_, never_);
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_TRUE(e->empty());
  auto n = Traversal::V(no_such).Out().Count().ExecuteCount(*engine_, *session_, never_);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 0u);
}

TEST_P(QueryTest, LimitStep) {
  auto limited = Traversal::V().Limit(3).ExecuteIds(*engine_, *session_, never_);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 3u);
}

TEST_P(QueryTest, CancelledTraversalFails) {
  CancelToken cancelled;
  cancelled.Cancel();
  auto r = Traversal::V().Out().Dedup().Execute(*engine_, *session_, cancelled);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded());
}

TEST_P(QueryTest, BreadthFirstDepths) {
  auto d1 = BreadthFirst(*engine_, *session_, p_[0], 1, std::nullopt, never_);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(std::set<VertexId>(d1->visited.begin(), d1->visited.end()),
            (std::set<VertexId>{p_[1], p_[2]}));

  auto d2 = BreadthFirst(*engine_, *session_, p_[0], 2, std::nullopt, never_);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(std::set<VertexId>(d2->visited.begin(), d2->visited.end()),
            (std::set<VertexId>{p_[1], p_[2], p_[3], post_}));
  EXPECT_EQ(d2->depth_reached, 2);

  // Label-filtered BFS never leaves the knows subgraph.
  auto knows = BreadthFirst(*engine_, *session_, p_[0], 5, std::string("knows"), never_);
  ASSERT_TRUE(knows.ok());
  EXPECT_EQ(std::set<VertexId>(knows->visited.begin(), knows->visited.end()),
            (std::set<VertexId>{p_[1], p_[2], p_[3]}));

  // Isolated vertex: nothing reachable.
  auto isolated = BreadthFirst(*engine_, *session_, p_[4], 3, std::nullopt, never_);
  ASSERT_TRUE(isolated.ok());
  EXPECT_TRUE(isolated->visited.empty());
}

TEST_P(QueryTest, BreadthFirstStoreSemanticsExcludeStart) {
  // The Gremlin store(vs) contract (see BfsResult in algorithms.h): vs is
  // seeded with the start, so `visited` reports only *reached* vertices —
  // the start never appears, even when a cycle leads back to it.
  auto cycle_a = engine_->AddVertex("cycle", {});
  auto cycle_b = engine_->AddVertex("cycle", {});
  auto cycle_c = engine_->AddVertex("cycle", {});
  ASSERT_TRUE(cycle_a.ok() && cycle_b.ok() && cycle_c.ok());
  ASSERT_TRUE(engine_->AddEdge(*cycle_a, *cycle_b, "ring", {}).ok());
  ASSERT_TRUE(engine_->AddEdge(*cycle_b, *cycle_c, "ring", {}).ok());
  ASSERT_TRUE(engine_->AddEdge(*cycle_c, *cycle_a, "ring", {}).ok());

  auto bfs = BreadthFirst(*engine_, *session_, *cycle_a, 5, std::string("ring"), never_);
  ASSERT_TRUE(bfs.ok());
  EXPECT_EQ(std::set<VertexId>(bfs->visited.begin(), bfs->visited.end()),
            (std::set<VertexId>{*cycle_b, *cycle_c}));
  EXPECT_EQ(std::count(bfs->visited.begin(), bfs->visited.end(), *cycle_a),
            0);
  // |stored| == |visited| + 1: both neighbors reached in one hop, done.
  EXPECT_EQ(bfs->depth_reached, 1);

  // A self-loop on the start is likewise never reported: the start is
  // already in vs when its own neighborhood is expanded.
  auto looped = engine_->AddVertex("cycle", {});
  ASSERT_TRUE(looped.ok());
  ASSERT_TRUE(engine_->AddEdge(*looped, *looped, "ring", {}).ok());
  auto self = BreadthFirst(*engine_, *session_, *looped, 3, std::string("ring"), never_);
  ASSERT_TRUE(self.ok());
  EXPECT_TRUE(self->visited.empty());
  EXPECT_EQ(self->depth_reached, 0);
}

TEST_P(QueryTest, ShortestPaths) {
  auto direct = ShortestPath(*engine_, *session_, p_[0], p_[3], std::nullopt, 10, never_);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(direct->found);
  // p0 -> p2 -> p3 via the shortcut: length 3 vertices.
  EXPECT_EQ(direct->path.size(), 3u);
  EXPECT_EQ(direct->path.front(), p_[0]);
  EXPECT_EQ(direct->path.back(), p_[3]);

  auto to_self = ShortestPath(*engine_, *session_, p_[1], p_[1], std::nullopt, 10, never_);
  ASSERT_TRUE(to_self.ok());
  EXPECT_EQ(to_self->path, std::vector<VertexId>{p_[1]});

  auto unreachable =
      ShortestPath(*engine_, *session_, p_[0], p_[4], std::nullopt, 10, never_);
  ASSERT_TRUE(unreachable.ok());
  EXPECT_FALSE(unreachable->found);

  // Label-restricted: tag is reachable only through post edges, so a
  // "knows"-only search fails.
  auto labeled =
      ShortestPath(*engine_, *session_, p_[0], tag_, std::string("knows"), 10, never_);
  ASSERT_TRUE(labeled.ok());
  EXPECT_FALSE(labeled->found);
}

TEST_P(QueryTest, ShortestPathDepthBound) {
  // p0 -> p3 needs 2 hops; a 1-hop budget must report unreachable with an
  // empty path, on both execution routes.
  for (query::PathMode mode :
       {query::PathMode::kAuto, query::PathMode::kFrontierOnly}) {
    auto bounded = ShortestPath(*engine_, *session_, p_[0], p_[3],
                                std::nullopt, 1, never_, mode);
    ASSERT_TRUE(bounded.ok());
    EXPECT_FALSE(bounded->found);
    EXPECT_TRUE(bounded->path.empty());
  }
}

TEST_P(QueryTest, ParallelEdgesVisitOnce) {
  // A duplicate knows edge must not duplicate BFS results or shorten the
  // shortest path.
  ASSERT_TRUE(engine_->AddEdge(p_[0], p_[1], "knows", {}).ok());
  auto bfs = BreadthFirst(*engine_, *session_, p_[0], 1, std::nullopt, never_);
  ASSERT_TRUE(bfs.ok());
  EXPECT_EQ(std::count(bfs->visited.begin(), bfs->visited.end(), p_[1]), 1);
  auto sp = ShortestPath(*engine_, *session_, p_[0], p_[3], std::nullopt, 10,
                         never_);
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->path.size(), 3u);
}

TEST_P(QueryTest, UnknownVertexIdsStayCheap) {
  // Regression: an id far beyond the engine's id bound must not make the
  // dense visited set allocate proportionally to the id value (it spills
  // to the sparse overflow set instead). Whatever the engine's
  // missing-vertex semantics, the query must return (not crash) and both
  // execution modes must agree.
  const VertexId no_such = 0x7FFFFFFFFFFFULL;
  auto bfs_auto = BreadthFirst(*engine_, *session_, no_such, 2, std::nullopt,
                               never_, query::PathMode::kAuto);
  auto bfs_frontier =
      BreadthFirst(*engine_, *session_, no_such, 2, std::nullopt, never_,
                   query::PathMode::kFrontierOnly);
  EXPECT_EQ(bfs_auto.ok(), bfs_frontier.ok());
  if (bfs_auto.ok()) {
    EXPECT_EQ(bfs_auto->visited, bfs_frontier->visited);
  }
  auto sp = ShortestPath(*engine_, *session_, p_[0], no_such, std::nullopt,
                         5, never_);
  if (sp.ok()) {
    EXPECT_FALSE(sp->found);
  }
}

TEST_P(QueryTest, IndexedRoutePreservesGoldenAnswers) {
  // Building the optional path index must not change any Q.32-Q.35
  // answer: re-run the golden assertions from BreadthFirstDepths /
  // ShortestPaths with the index live and verify it actually served the
  // label-free queries.
  ASSERT_TRUE(engine_->BuildPathIndex(never_).ok());

  auto d2 = BreadthFirst(*engine_, *session_, p_[0], 2, std::nullopt, never_);
  ASSERT_TRUE(d2.ok());
  EXPECT_TRUE(d2->stats.used_index);
  EXPECT_EQ(std::set<VertexId>(d2->visited.begin(), d2->visited.end()),
            (std::set<VertexId>{p_[1], p_[2], p_[3], post_}));
  EXPECT_EQ(d2->depth_reached, 2);

  auto direct = ShortestPath(*engine_, *session_, p_[0], p_[3], std::nullopt,
                             10, never_);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct->stats.used_index);
  ASSERT_TRUE(direct->found);
  EXPECT_EQ(direct->path.size(), 3u);

  // source == target: {src}, found, no existence check — on both routes.
  auto to_self = ShortestPath(*engine_, *session_, p_[1], p_[1], std::nullopt,
                              10, never_);
  ASSERT_TRUE(to_self.ok());
  EXPECT_EQ(to_self->path, std::vector<VertexId>{p_[1]});

  // Unreachable target answered without a frontier.
  auto unreachable = ShortestPath(*engine_, *session_, p_[0], p_[4],
                                  std::nullopt, 10, never_);
  ASSERT_TRUE(unreachable.ok());
  EXPECT_FALSE(unreachable->found);
  EXPECT_TRUE(unreachable->stats.used_index);
  EXPECT_EQ(unreachable->stats.expanded, 0u);

  // Label filters bypass the index and keep their golden answer.
  auto labeled = ShortestPath(*engine_, *session_, p_[0], tag_,
                              std::string("knows"), 10, never_);
  ASSERT_TRUE(labeled.ok());
  EXPECT_FALSE(labeled->stats.used_index);
  EXPECT_FALSE(labeled->found);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, QueryTest,
    ::testing::Values("arango", "blaze", "neo19", "neo30", "orient",
                      "sparksee", "sqlg", "titan05", "titan10"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace gdbmicro
