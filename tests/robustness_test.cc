// Robustness tests for the query governor, the transient-fault injector,
// and the retry/abort machinery: typed deadline and memory-budget errors
// on every engine with the session staying reusable afterwards (the same
// session reproduces the golden answer), prompt early-stop of every
// engine scan entry point on a cancelled token, writer commit aborts that
// leave the store and epoch gate intact, deterministic fault sequences,
// and the Runner's bounded retry absorbing injected faults.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "src/core/queries.h"
#include "src/core/runner.h"
#include "src/datasets/generators.h"
#include "src/graph/fault.h"
#include "src/graph/registry.h"
#include "src/graph/writer.h"
#include "src/query/governor.h"
#include "src/query/traversal.h"
#include "src/util/timer.h"

namespace gdbmicro {
namespace {

using query::GovernorOptions;
using query::ResourceGovernor;
using query::Traversal;

// ---------------------------------------------------------------------
// Governor unit tests: typed trips with attributable diagnostics.

TEST(GovernorTest, MemoryBudgetTripsTyped) {
  ResourceGovernor governor({std::chrono::nanoseconds(0), 4096});
  EXPECT_FALSE(governor.exhausted());
  EXPECT_TRUE(governor.Charge(1024, "warmup").ok());
  EXPECT_EQ(governor.charged_bytes(), 1024u);
  EXPECT_TRUE(governor.status().ok());

  Status s = governor.Charge(8192, "GovernorTest.site");
  EXPECT_TRUE(s.IsResourceExhausted()) << s;
  EXPECT_TRUE(governor.memory_exhausted());
  EXPECT_FALSE(governor.deadline_exceeded());
  // Diagnostics: charged-vs-limit bytes and the marked position.
  EXPECT_NE(s.message().find("budget 4096"), std::string::npos) << s;
  EXPECT_NE(s.message().find("GovernorTest.site"), std::string::npos) << s;
  EXPECT_TRUE(governor.status().IsResourceExhausted());
}

TEST(GovernorTest, SpentDeadlineTripsTyped) {
  ResourceGovernor governor({std::chrono::microseconds(200), 0});
  SpinFor(1000);
  EXPECT_TRUE(governor.token().Expired());
  EXPECT_TRUE(governor.deadline_exceeded());
  Status s = governor.token().ToStatus();
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s;
  // Diagnostics: elapsed-vs-budget milliseconds.
  EXPECT_NE(s.message().find("elapsed"), std::string::npos) << s;
  EXPECT_NE(s.message().find("budget"), std::string::npos) << s;
}

TEST(GovernorTest, UnlimitedGovernorNeverTrips) {
  ResourceGovernor governor;  // no deadline, no budget
  EXPECT_TRUE(governor.Charge(1ULL << 40).ok());
  EXPECT_FALSE(governor.token().Expired());
  EXPECT_TRUE(governor.status().ok());
}

TEST(GovernorTest, FirstTripWins) {
  ResourceGovernor governor({std::chrono::nanoseconds(0), 64});
  EXPECT_TRUE(governor.Charge(128).IsResourceExhausted());
  governor.Cancel();  // later cancellation must not flap the class
  EXPECT_TRUE(governor.status().IsResourceExhausted());
}

// ---------------------------------------------------------------------
// Fault injector: deterministic seeded sequences, rate endpoints.

TEST(FaultInjectorTest, DeterministicSequence) {
  QueryFaultInjector a({0.3, 1234});
  QueryFaultInjector b({0.3, 1234});
  std::vector<bool> sa, sb;
  for (int i = 0; i < 1000; ++i) sa.push_back(a.Intercept("t").ok());
  for (int i = 0; i < 1000; ++i) sb.push_back(b.Intercept("t").ok());
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(a.probes(), 1000u);
  EXPECT_EQ(a.faults(), b.faults());
  // The hash-threshold scheme converges on the configured rate.
  EXPECT_GT(a.faults(), 200u);
  EXPECT_LT(a.faults(), 400u);
}

TEST(FaultInjectorTest, SeedChangesTheSequence) {
  QueryFaultInjector a({0.3, 1});
  QueryFaultInjector b({0.3, 2});
  std::vector<bool> sa, sb;
  for (int i = 0; i < 256; ++i) sa.push_back(a.Intercept("t").ok());
  for (int i = 0; i < 256; ++i) sb.push_back(b.Intercept("t").ok());
  EXPECT_NE(sa, sb);
}

TEST(FaultInjectorTest, RateEndpoints) {
  QueryFaultInjector never({0.0, 42});
  QueryFaultInjector always({1.0, 42});
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(never.Intercept("t").ok());
    Status s = always.Intercept("t");
    EXPECT_TRUE(s.IsUnavailable()) << s;
  }
  EXPECT_EQ(never.probes(), 64u);
  EXPECT_EQ(never.faults(), 0u);
  EXPECT_EQ(always.faults(), 64u);
  // The fired status names the site for attribution.
  EXPECT_NE(always.Intercept("my.site").message().find("my.site"),
            std::string::npos);
}

TEST(FaultInjectorTest, ResetRearms) {
  QueryFaultInjector injector({1.0, 42});
  EXPECT_TRUE(injector.Intercept("t").IsUnavailable());
  injector.Reset({0.0, 42});
  EXPECT_TRUE(injector.Intercept("t").ok());
  EXPECT_EQ(injector.probes(), 1u);  // Reset zeroes the counters
  EXPECT_EQ(injector.faults(), 0u);
}

// ---------------------------------------------------------------------
// Per-engine property: a deadline-tripped and a budget-tripped query
// return typed errors, and the *same session* then reproduces the golden
// answer — errors poison neither the session nor the engine.

/// Dense graph big enough that V().Both() materializes > 131072 rows
/// (so a 1 MiB governor budget at 8 bytes/row must trip) while keeping
/// the per-engine call count at |V| + 1 scans — small enough that the
/// golden runs stay fast even under the emulated cost models.
const GraphData& DenseGraph() {
  static const GraphData* data = [] {
    auto* g = new GraphData();
    g->name = "dense";
    const uint64_t n = 400;
    g->vertices.resize(n);
    for (uint64_t i = 0; i < n; ++i) g->vertices[i].label = "node";
    for (uint64_t i = 0; i < n; ++i) {
      for (uint64_t j = i + 1; j < n; ++j) {
        GraphData::Edge e;
        e.src = i;
        e.dst = j;
        e.label = "link";
        g->edges.push_back(std::move(e));
      }
    }
    return g;
  }();
  return *data;
}

class RobustnessEngineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RobustnessEngineTest, SessionSurvivesDeadlineAndMemoryTrips) {
  auto engine = OpenEngine(GetParam(), EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status();
  ASSERT_TRUE((*engine)->BulkLoad(DenseGraph()).ok());
  auto session = (*engine)->CreateSession();

  Traversal t = Traversal::V().Both();
  auto run = [&](const CancelToken& cancel) {
    session->BeginQuery();
    return t.Execute(**engine, *session, cancel);
  };

  // Golden answer first: every vertex's neighborhood, both directions.
  auto golden = run(CancelToken());
  ASSERT_TRUE(golden.ok()) << golden.status();
  const uint64_t expect_rows = 2 * DenseGraph().EdgeCount();
  EXPECT_EQ(golden->rows.size(), expect_rows);

  // A 1 ms deadline that is already spent when the query starts (the
  // runner's remaining-time arithmetic produces exactly this): typed
  // kDeadlineExceeded, never a crash or a hang.
  ResourceGovernor deadline({std::chrono::milliseconds(1), 0});
  SpinFor(2000);
  auto timed_out = run(deadline.token());
  ASSERT_FALSE(timed_out.ok());
  EXPECT_TRUE(timed_out.status().IsDeadlineExceeded()) << timed_out.status();
  EXPECT_TRUE(deadline.deadline_exceeded());

  // A 1 MiB budget against > 1 MiB of materialized rows: typed
  // kResourceExhausted with charged-vs-limit diagnostics.
  ResourceGovernor budget({std::chrono::nanoseconds(0), 1ULL << 20});
  auto oom = run(budget.token());
  ASSERT_FALSE(oom.ok());
  EXPECT_TRUE(oom.status().IsResourceExhausted()) << oom.status();
  EXPECT_TRUE(budget.memory_exhausted());
  EXPECT_NE(oom.status().message().find("budget"), std::string::npos);

  // The same session reproduces the golden answer after both trips.
  auto again = run(CancelToken());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->rows.size(), expect_rows);
}

// ---------------------------------------------------------------------
// Per-engine early stop: every scan entry point observes a cancelled
// token promptly and returns the typed status instead of finishing the
// walk (the scan-loop gaps closed by the governor change: indexed
// ScanKey fast paths, catalog walks, label scans).

TEST_P(RobustnessEngineTest, ScanEntryPointsStopOnCancelledToken) {
  auto opened = OpenEngine(GetParam(), EngineOptions{});
  ASSERT_TRUE(opened.ok()) << opened.status();
  GraphEngine& engine = **opened;

  PropertyMap props;
  props.emplace_back("name", PropertyValue("ada"));
  auto v0 = engine.AddVertex("person", props);
  auto v1 = engine.AddVertex("person", {});
  ASSERT_TRUE(v0.ok() && v1.ok());
  ASSERT_TRUE(engine.AddEdge(*v0, *v1, "knows", {}).ok());
  // Indexed where supported: the ScanKey fast path must stay cooperative.
  engine.CreateVertexPropertyIndex("name").ok();
  auto session = engine.CreateSession();

  CancelToken cancelled;
  cancelled.Cancel();

  Status s = engine.ScanVertices(*session, cancelled,
                                 [](VertexId) { return true; });
  EXPECT_TRUE(s.IsDeadlineExceeded()) << "ScanVertices: " << s;

  s = engine.ScanEdges(*session, cancelled,
                       [](const EdgeEnds&) { return true; });
  EXPECT_TRUE(s.IsDeadlineExceeded()) << "ScanEdges: " << s;

  auto found = engine.FindVerticesByProperty(*session, "name",
                                             PropertyValue("ada"), cancelled);
  EXPECT_TRUE(found.status().IsDeadlineExceeded())
      << "FindVerticesByProperty: " << found.status();

  auto labels = engine.DistinctEdgeLabels(*session, cancelled);
  EXPECT_TRUE(labels.status().IsDeadlineExceeded())
      << "DistinctEdgeLabels: " << labels.status();

  auto edges = engine.FindEdgesByLabel(*session, "knows", cancelled);
  EXPECT_TRUE(edges.status().IsDeadlineExceeded())
      << "FindEdgesByLabel: " << edges.status();
}

INSTANTIATE_TEST_SUITE_P(AllEngines, RobustnessEngineTest,
                         ::testing::Values("neo19", "neo30", "titan05",
                                           "titan10", "orient", "sqlg",
                                           "arango", "blaze", "sparksee"));

// ---------------------------------------------------------------------
// Writer abort: an injected commit fault fires before the batch is
// logged, so the store, the WAL, and the epoch gate are untouched and
// the commit is safely retryable.

TEST(WriterAbortTest, InjectedCommitFaultLeavesStoreIntact) {
  auto opened = OpenEngine("neo19", EngineOptions{});
  ASSERT_TRUE(opened.ok()) << opened.status();
  GraphEngine& engine = **opened;
  ASSERT_TRUE(engine.AddVertex("seed", {}).ok());

  GraphWriter writer(&engine);
  QueryFaultInjector injector({1.0, 99});
  writer.set_fault_injector(&injector);

  // Sessions pin their epoch, and a publishing commit waits for pinned
  // readers to drain — so every session here is scoped to its check and
  // released before the next Commit.
  CancelToken never;
  uint64_t count_before = 0;
  {
    auto session = engine.CreateSession();
    auto count = engine.CountVertices(*session, never);
    ASSERT_TRUE(count.ok());
    count_before = *count;
  }
  uint64_t epoch_before = engine.epochs().current();
  uint64_t commits_before = writer.commits();

  WriteBatch batch;
  batch.AddVertex("added", {});
  auto receipt = writer.Commit(batch);
  ASSERT_FALSE(receipt.ok());
  EXPECT_TRUE(receipt.status().IsUnavailable()) << receipt.status();

  // Nothing moved: no vertex, no epoch, no commit counted.
  {
    auto session = engine.CreateSession();
    auto count = engine.CountVertices(*session, never);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, count_before);
  }
  EXPECT_EQ(engine.epochs().current(), epoch_before);
  EXPECT_EQ(writer.commits(), commits_before);

  // The retry succeeds once the transient clears, publishing an epoch.
  injector.Reset({0.0, 99});
  auto retried = writer.Commit(batch);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_GT(engine.epochs().current(), epoch_before);
  {
    auto session = engine.CreateSession();
    auto count = engine.CountVertices(*session, never);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, count_before + 1);
  }
}

// ---------------------------------------------------------------------
// Runner retry: injected read faults are absorbed by bounded retry with
// the per-class accounting keeping its identity.

TEST(RunnerRetryTest, BoundedRetryAbsorbsTransientFaults) {
  datasets::GenOptions gen;
  gen.scale = 0.004;
  auto data = datasets::GenerateByName("mico", gen);
  ASSERT_TRUE(data.ok()) << data.status();

  QueryFaultInjector injector({0.3, 5});
  core::RunnerOptions options;
  options.deadline = std::chrono::milliseconds(10000);
  options.batch_iterations = 10;
  options.enable_cost_model = false;
  options.memory_budget_bytes = 0;
  options.max_attempts = 5;
  options.retry_backoff_us = 10;
  options.fault_injector = &injector;
  core::Runner runner(options);

  // The document engine probes the injector on every REST-like fetch, so
  // Q.14 (g.V(id)) exercises attempt/backoff on each iteration.
  auto loaded = runner.Load("arango", *data);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto specs = core::QueriesByNumber({14, 15});
  core::OutcomeCounters totals;
  for (const core::QuerySpec* spec : specs) {
    for (const core::Measurement& m : runner.RunQuery(*loaded, *data, *spec)) {
      totals.Merge(m.outcomes);
      EXPECT_TRUE(m.status.ok() || m.status.IsUnavailable()) << m.status;
    }
  }
  // 2 specs x (1 single + 10 batch) = 22 issued; at a 30% per-probe fault
  // rate with 5 attempts some queries must have retried, and every issued
  // query lands in exactly one class.
  EXPECT_EQ(totals.Issued(), 22u);
  EXPECT_GT(totals.retried, 0u);
  EXPECT_GT(totals.retry_attempts, 0u);
  EXPECT_EQ(totals.timeout, 0u);
  EXPECT_EQ(totals.oom, 0u);
  EXPECT_EQ(totals.ok + totals.retried + totals.failed, 22u);
  EXPECT_GT(injector.faults(), 0u);

  // No-injector control: same runner shape, no retries recorded.
  core::RunnerOptions clean = options;
  clean.fault_injector = nullptr;
  core::Runner clean_runner(clean);
  auto clean_loaded = clean_runner.Load("arango", *data);
  ASSERT_TRUE(clean_loaded.ok());
  core::OutcomeCounters clean_totals;
  for (const core::QuerySpec* spec : specs) {
    for (const core::Measurement& m :
         clean_runner.RunQuery(*clean_loaded, *data, *spec)) {
      EXPECT_TRUE(m.status.ok()) << m.status;
      clean_totals.Merge(m.outcomes);
    }
  }
  EXPECT_EQ(clean_totals.ok, 22u);
  EXPECT_EQ(clean_totals.retried, 0u);
  EXPECT_EQ(clean_totals.retry_attempts, 0u);
}

}  // namespace
}  // namespace gdbmicro
