// Unit tests for the storage primitives: bitmap, B+Tree, hash index,
// record file, append store, journal, LRU cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/storage/append_store.h"
#include "src/storage/bitmap.h"
#include "src/storage/btree.h"
#include "src/storage/hash_index.h"
#include "src/storage/journal.h"
#include "src/storage/lru_cache.h"
#include "src/storage/record_file.h"
#include "src/util/rng.h"

namespace gdbmicro {
namespace {

// --- Bitmap -----------------------------------------------------------------

TEST(BitmapTest, AddRemoveContains) {
  Bitmap bm;
  EXPECT_TRUE(bm.Add(5));
  EXPECT_FALSE(bm.Add(5));
  EXPECT_TRUE(bm.Contains(5));
  EXPECT_FALSE(bm.Contains(6));
  EXPECT_EQ(bm.Cardinality(), 1u);
  EXPECT_TRUE(bm.Remove(5));
  EXPECT_FALSE(bm.Remove(5));
  EXPECT_TRUE(bm.Empty());
}

TEST(BitmapTest, CrossChunkIds) {
  Bitmap bm;
  std::vector<uint64_t> ids = {0, 65535, 65536, 1 << 20, (1ULL << 33) + 7};
  for (uint64_t id : ids) bm.Add(id);
  EXPECT_EQ(bm.ToVector(), ids);
}

TEST(BitmapTest, DenseConversionRoundTrip) {
  Bitmap bm;
  // Force array -> bitset conversion (> 4096 in one chunk), then shrink.
  for (uint64_t i = 0; i < 5000; ++i) bm.Add(i);
  EXPECT_EQ(bm.Cardinality(), 5000u);
  for (uint64_t i = 0; i < 5000; ++i) EXPECT_TRUE(bm.Contains(i));
  for (uint64_t i = 0; i < 4500; ++i) bm.Remove(i);
  EXPECT_EQ(bm.Cardinality(), 500u);
  for (uint64_t i = 4500; i < 5000; ++i) EXPECT_TRUE(bm.Contains(i));
}

TEST(BitmapTest, UnionIntersection) {
  Bitmap a, b;
  for (uint64_t i = 0; i < 100; i += 2) a.Add(i);
  for (uint64_t i = 0; i < 100; i += 3) b.Add(i);
  Bitmap u = a;
  u.UnionWith(b);
  Bitmap x = a;
  x.IntersectWith(b);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(u.Contains(i), i % 2 == 0 || i % 3 == 0) << i;
    EXPECT_EQ(x.Contains(i), i % 6 == 0) << i;
  }
}

TEST(BitmapTest, SerializeRoundTrip) {
  Bitmap bm;
  Rng rng(99);
  for (int i = 0; i < 6000; ++i) bm.Add(rng.Uniform(1 << 22));
  std::string buf;
  bm.Serialize(&buf);
  size_t pos = 0;
  auto round = Bitmap::Deserialize(buf, &pos);
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(pos, buf.size());
  EXPECT_TRUE(*round == bm);
}

TEST(BitmapTest, ForEachEarlyStop) {
  Bitmap bm;
  for (uint64_t i = 0; i < 100; ++i) bm.Add(i);
  int visited = 0;
  bm.ForEach([&](uint64_t) { return ++visited < 10; });
  EXPECT_EQ(visited, 10);
}

// --- BTree ------------------------------------------------------------------

TEST(BTreeTest, InsertContainsErase) {
  BTree<uint64_t, uint64_t> tree;
  EXPECT_TRUE(tree.Insert(1, 10));
  EXPECT_FALSE(tree.Insert(1, 10));  // duplicate entry
  EXPECT_TRUE(tree.Insert(1, 11));   // multimap: same key, new value
  EXPECT_TRUE(tree.Contains(1, 10));
  EXPECT_TRUE(tree.Contains(1, 11));
  EXPECT_FALSE(tree.Contains(2, 10));
  EXPECT_EQ(tree.CountKey(1), 2u);
  EXPECT_TRUE(tree.Erase(1, 10));
  EXPECT_FALSE(tree.Erase(1, 10));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BTreeTest, LargeOrderedIteration) {
  BTree<uint64_t, uint64_t> tree;
  Rng rng(7);
  std::set<std::pair<uint64_t, uint64_t>> reference;
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = rng.Uniform(5000);
    uint64_t v = rng.Uniform(100);
    tree.Insert(k, v);
    reference.emplace(k, v);
  }
  EXPECT_EQ(tree.size(), reference.size());
  EXPECT_GT(tree.height(), 1);
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  tree.ScanAll([&](const uint64_t& k, const uint64_t& v) {
    scanned.emplace_back(k, v);
    return true;
  });
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
  EXPECT_EQ(scanned.size(), reference.size());
  EXPECT_TRUE(std::equal(scanned.begin(), scanned.end(), reference.begin()));
}

TEST(BTreeTest, RangeScan) {
  BTree<uint64_t, uint64_t> tree;
  for (uint64_t k = 0; k < 1000; ++k) tree.Insert(k, k * 2);
  std::vector<uint64_t> keys;
  tree.ScanRange(100, 110, [&](const uint64_t& k, const uint64_t&) {
    keys.push_back(k);
    return true;
  });
  std::vector<uint64_t> expected;
  for (uint64_t k = 100; k <= 110; ++k) expected.push_back(k);
  EXPECT_EQ(keys, expected);
}

TEST(BTreeTest, RangeScanWithDuplicateKeysAcrossLeaves) {
  BTree<uint64_t, uint64_t> tree;
  // 300 values under one key forces the key to straddle leaves.
  for (uint64_t v = 0; v < 300; ++v) tree.Insert(42, v);
  for (uint64_t k = 0; k < 100; ++k) tree.Insert(k, 0);
  EXPECT_EQ(tree.CountKey(42), 300u);
}

TEST(BTreeTest, EraseUnderRandomChurn) {
  BTree<uint64_t, uint64_t> tree;
  std::multimap<uint64_t, uint64_t> reference;
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    uint64_t k = rng.Uniform(200);
    uint64_t v = rng.Uniform(50);
    if (rng.Chance(0.6)) {
      bool inserted = tree.Insert(k, v);
      bool ref_has = false;
      auto range = reference.equal_range(k);
      for (auto it = range.first; it != range.second; ++it) {
        if (it->second == v) ref_has = true;
      }
      EXPECT_EQ(inserted, !ref_has);
      if (!ref_has) reference.emplace(k, v);
    } else {
      bool erased = tree.Erase(k, v);
      bool ref_erased = false;
      auto range = reference.equal_range(k);
      for (auto it = range.first; it != range.second; ++it) {
        if (it->second == v) {
          reference.erase(it);
          ref_erased = true;
          break;
        }
      }
      EXPECT_EQ(erased, ref_erased);
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
}

// --- HashIndex ----------------------------------------------------------------

TEST(HashIndexTest, PutGetErase) {
  HashIndex<uint64_t, std::string> idx;
  EXPECT_TRUE(idx.Put(1, "one"));
  EXPECT_FALSE(idx.Put(1, "uno"));  // overwrite
  ASSERT_NE(idx.Get(1), nullptr);
  EXPECT_EQ(*idx.Get(1), "uno");
  EXPECT_TRUE(idx.Erase(1));
  EXPECT_FALSE(idx.Erase(1));
  EXPECT_EQ(idx.Get(1), nullptr);
}

TEST(HashIndexTest, StringKeys) {
  HashIndex<std::string, uint64_t> idx;
  idx.Put("alpha", 1);
  idx.Put("beta", 2);
  ASSERT_NE(idx.Get("alpha"), nullptr);
  EXPECT_EQ(*idx.Get("alpha"), 1u);
  EXPECT_EQ(idx.Get("gamma"), nullptr);
}

TEST(HashIndexTest, GrowthAndTombstoneChurn) {
  HashIndex<uint64_t, uint64_t> idx;
  std::map<uint64_t, uint64_t> reference;
  Rng rng(21);
  for (int i = 0; i < 30000; ++i) {
    uint64_t k = rng.Uniform(3000);
    if (rng.Chance(0.7)) {
      idx.Put(k, k * 3);
      reference[k] = k * 3;
    } else {
      EXPECT_EQ(idx.Erase(k), reference.erase(k) > 0) << k;
    }
  }
  EXPECT_EQ(idx.size(), reference.size());
  for (const auto& [k, v] : reference) {
    ASSERT_NE(idx.Get(k), nullptr) << k;
    EXPECT_EQ(*idx.Get(k), v);
  }
  uint64_t visited = 0;
  idx.ForEach([&](const uint64_t& k, const uint64_t& v) {
    EXPECT_EQ(reference.at(k), v);
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, reference.size());
}

// --- RecordFile -----------------------------------------------------------------

TEST(RecordFileTest, AllocateWriteRead) {
  RecordFile rf(32);
  uint64_t a = rf.Allocate();
  uint64_t b = rf.Allocate();
  EXPECT_NE(a, b);
  ASSERT_TRUE(rf.Write(a, "hello").ok());
  auto read = rf.Read(a);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->substr(0, 5), "hello");
  EXPECT_EQ(rf.LiveCount(), 2u);
}

TEST(RecordFileTest, FreeListReuse) {
  RecordFile rf(16);
  uint64_t a = rf.Allocate();
  uint64_t b = rf.Allocate();
  ASSERT_TRUE(rf.Free(a).ok());
  EXPECT_FALSE(rf.IsLive(a));
  EXPECT_FALSE(rf.Free(a).ok());  // double free
  uint64_t c = rf.Allocate();
  EXPECT_EQ(c, a);  // slot recycled
  EXPECT_EQ(rf.SlotCount(), 2u);
  (void)b;
}

TEST(RecordFileTest, PayloadTooLargeRejected) {
  RecordFile rf(16);
  uint64_t a = rf.Allocate();
  std::string big(20, 'x');
  EXPECT_FALSE(rf.Write(a, big).ok());
}

TEST(RecordFileTest, SerializeRoundTrip) {
  RecordFile rf(24);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(rf.Allocate());
  for (int i = 0; i < 100; i += 3) ASSERT_TRUE(rf.Free(ids[i]).ok());
  for (int i = 1; i < 100; i += 3) {
    ASSERT_TRUE(rf.Write(ids[i], "abc").ok());
  }
  std::string buf;
  rf.Serialize(&buf);
  size_t pos = 0;
  auto round = RecordFile::Deserialize(buf, &pos);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->LiveCount(), rf.LiveCount());
  EXPECT_EQ(round->SlotCount(), rf.SlotCount());
  for (int i = 1; i < 100; i += 3) {
    auto data = round->Read(ids[i]);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data->substr(0, 3), "abc");
  }
  // Free list still works after deserialization.
  uint64_t reused = round->Allocate();
  EXPECT_LT(reused, round->SlotCount());
}

// --- AppendStore -----------------------------------------------------------------

TEST(AppendStoreTest, AppendUpdateDelete) {
  AppendStore store;
  uint64_t a = store.Append("v1");
  EXPECT_EQ(store.Read(a).value(), "v1");
  ASSERT_TRUE(store.Update(a, "version-two").ok());
  EXPECT_EQ(store.Read(a).value(), "version-two");
  uint64_t old_log = store.LogBytes();
  ASSERT_TRUE(store.Delete(a).ok());
  EXPECT_FALSE(store.Read(a).ok());
  EXPECT_EQ(store.LogBytes(), old_log);  // log never shrinks on delete
  EXPECT_FALSE(store.Update(a, "zombie").ok());
}

TEST(AppendStoreTest, CompactDropsDeadVersions) {
  AppendStore store;
  uint64_t a = store.Append("aaaa");
  uint64_t b = store.Append("bbbb");
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(store.Update(a, "update").ok());
  ASSERT_TRUE(store.Delete(b).ok());
  uint64_t before = store.LogBytes();
  store.Compact();
  EXPECT_LT(store.LogBytes(), before);
  EXPECT_EQ(store.Read(a).value(), "update");
  EXPECT_FALSE(store.IsLive(b));
}

TEST(AppendStoreTest, SerializeRoundTrip) {
  AppendStore store;
  uint64_t a = store.Append("one");
  uint64_t b = store.Append("two");
  ASSERT_TRUE(store.Delete(a).ok());
  std::string buf;
  store.Serialize(&buf);
  size_t pos = 0;
  auto round = AppendStore::Deserialize(buf, &pos);
  ASSERT_TRUE(round.ok());
  EXPECT_FALSE(round->IsLive(a));
  EXPECT_EQ(round->Read(b).value(), "two");
  EXPECT_EQ(round->LiveCount(), 1u);
}

// --- Journal ---------------------------------------------------------------------

TEST(JournalTest, AppendAndRead) {
  Journal j(1024, 1);
  uint64_t off = j.Append("hello");
  EXPECT_EQ(j.Read(off, 5).value(), "hello");
  EXPECT_FALSE(j.Read(off, 100).ok());
}

TEST(JournalTest, ExtentGranularAllocation) {
  Journal j(1024, 2);
  EXPECT_EQ(j.AllocatedBytes(), 2048u);
  std::string blob(3000, 'x');
  j.Append(blob);
  EXPECT_EQ(j.UsedBytes(), 3000u);
  EXPECT_EQ(j.AllocatedBytes(), 3072u);  // grown to 3 extents
  std::string buf;
  j.Serialize(&buf);
  EXPECT_GE(buf.size(), j.AllocatedBytes());  // slack serialized too
}

// Regression: the bounds check used to be `offset + len > used_`, which
// wraps for huge len/offset and "succeeds" — reading past the extent. The
// rewritten check (`len > used_ || offset > used_ - len`) cannot overflow.
TEST(JournalTest, ReadBoundsCheckDoesNotOverflow) {
  Journal j(1024, 1);
  uint64_t off = j.Append("hello");
  uint64_t huge = std::numeric_limits<uint64_t>::max();
  EXPECT_FALSE(j.Read(off, huge).ok());            // off + huge wraps
  EXPECT_FALSE(j.Read(huge, 5).ok());              // huge + 5 wraps
  EXPECT_FALSE(j.Read(huge, huge).ok());           // both wrap
  EXPECT_FALSE(j.Read(1, j.UsedBytes()).ok());     // one past the end
  EXPECT_TRUE(j.Read(0, j.UsedBytes()).ok());      // exact extent is fine
  EXPECT_TRUE(j.Read(j.UsedBytes(), 0).ok());      // empty read at the end
}

TEST(JournalTest, Crc32cKnownVectorAndChaining) {
  // RFC 3720 test vector: crc32c of 32 zero bytes.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aau);
  // Chaining a split input must equal the one-shot checksum.
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(data);
  uint32_t chained = Crc32c(data.substr(9), Crc32c(data.substr(0, 9)));
  EXPECT_EQ(chained, whole);
  EXPECT_NE(Crc32c("a"), Crc32c("b"));
}

TEST(JournalTest, FramedRecordRoundTrip) {
  Journal j(1024, 1);
  j.AppendRecord(WalRecordType::kMutation, "payload-one");
  j.AppendRecord(WalRecordType::kNoop, "");
  j.AppendRecord(WalRecordType::kCommit, "seal");
  std::vector<std::pair<WalRecordType, std::string>> seen;
  auto stats = j.Recover([&](WalRecordType t, std::string_view p) {
    seen.emplace_back(t, std::string(p));
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->tail.ok());
  EXPECT_EQ(stats->truncated_bytes, 0u);
  EXPECT_EQ(stats->commits_applied, 1u);
  // kNoop frames are validated but never delivered.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, WalRecordType::kMutation);
  EXPECT_EQ(seen[0].second, "payload-one");
  EXPECT_EQ(seen[1].first, WalRecordType::kCommit);
  EXPECT_EQ(seen[1].second, "seal");
}

TEST(JournalTest, FaultInjectorIsDeterministicPerSeed) {
  std::string payload(64, 'q');
  auto run = [&](uint64_t seed) {
    FaultInjector f(FaultMode::kTornWrite, 1, seed);
    return f.Intercept(payload).bytes;
  };
  EXPECT_EQ(run(7), run(7));      // same seed, same mangling
  EXPECT_NE(run(7), run(1234));   // different seed, different mangling
}

TEST(JournalTest, FaultInjectorFiresOnceOnNthAppend) {
  FaultInjector f(FaultMode::kFailAppend, 2);
  Journal j(1024, 1);
  j.set_fault_injector(&f);
  EXPECT_TRUE(j.AppendDurable("first").ok());
  EXPECT_FALSE(f.fired());
  EXPECT_FALSE(j.AppendDurable("second").ok());  // trigger: Nth append fails
  EXPECT_TRUE(f.fired());
  EXPECT_TRUE(j.dead());
  EXPECT_FALSE(j.AppendDurable("third").ok());   // device stays dead
  EXPECT_EQ(j.UsedBytes(), 5u);                  // only "first" landed
}

TEST(JournalTest, BitFlipLeavesDeviceAliveButMangled) {
  FaultInjector f(FaultMode::kBitFlip, 1);
  Journal j(1024, 1);
  j.set_fault_injector(&f);
  std::string payload(16, 'a');
  ASSERT_TRUE(j.AppendDurable(payload).ok());
  EXPECT_FALSE(j.dead());                        // silent corruption
  EXPECT_TRUE(j.AppendDurable("more").ok());     // later writes still land
  EXPECT_NE(j.Read(0, 16).value(), payload);     // exactly one bit differs
}

TEST(JournalTest, SerializeRoundTrip) {
  Journal j(256, 1);
  uint64_t off = j.Append("data!");
  std::string buf;
  j.Serialize(&buf);
  size_t pos = 0;
  auto round = Journal::Deserialize(buf, &pos);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->Read(off, 5).value(), "data!");
  EXPECT_EQ(round->AllocatedBytes(), j.AllocatedBytes());
}

// --- LruCache ---------------------------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, std::string> cache(2);
  cache.Put(1, "a");
  cache.Put(2, "b");
  EXPECT_NE(cache.Get(1), nullptr);  // promotes 1
  cache.Put(3, "c");                 // evicts 2
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
}

TEST(LruCacheTest, StatsAndInvalidate) {
  LruCache<int, int> cache(4);
  cache.Put(1, 10);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(9), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Invalidate(1);
  EXPECT_EQ(cache.Get(1), nullptr);
}

TEST(LruCacheTest, ZeroCapacityNeverStores) {
  LruCache<int, int> cache(0);
  cache.Put(1, 10);
  EXPECT_EQ(cache.Get(1), nullptr);
}

// The deployment shape the Titan-like engine uses since the QuerySession
// refactor: one LruCache per read session, concurrent sessions each
// churning their own instance (the engine shares NO cache state between
// clients). Each thread's hit/miss accounting must be exactly what a
// single-threaded client would see — and under the CI ThreadSanitizer
// build this test also proves the per-session arrangement is race-free.
TEST(LruCacheTest, PerSessionInstancesAreIndependentAcrossThreads) {
  constexpr int kClients = 4;
  constexpr int kOps = 20000;
  constexpr size_t kCapacity = 64;

  // Golden single-threaded pass over the same access pattern.
  auto churn = [](uint64_t seed, LruCache<uint64_t, uint64_t>* cache) {
    Rng rng(seed);
    for (int i = 0; i < kOps; ++i) {
      uint64_t key = rng.Uniform(256);
      if (cache->Get(key) == nullptr) cache->Put(key, key * 2);
    }
  };
  std::vector<std::pair<uint64_t, uint64_t>> golden(kClients);
  for (int c = 0; c < kClients; ++c) {
    LruCache<uint64_t, uint64_t> cache(kCapacity);
    churn(/*seed=*/c + 1, &cache);
    golden[c] = {cache.hits(), cache.misses()};
  }

  std::vector<std::unique_ptr<LruCache<uint64_t, uint64_t>>> caches;
  for (int c = 0; c < kClients; ++c) {
    caches.push_back(
        std::make_unique<LruCache<uint64_t, uint64_t>>(kCapacity));
  }
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back(
        [&churn, &caches, c] { churn(c + 1, caches[c].get()); });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(caches[c]->hits(), golden[c].first) << "client " << c;
    EXPECT_EQ(caches[c]->misses(), golden[c].second) << "client " << c;
  }
}

}  // namespace
}  // namespace gdbmicro
