// Unit tests for src/util: Status/Result, JSON, varint/delta codecs,
// RNG/samplers, string helpers.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include "src/util/cancel.h"
#include "src/util/json.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/string_util.h"
#include "src/util/timer.h"
#include "src/util/varint.h"

namespace gdbmicro {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 11; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);

  Result<int> bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(42), 42);
}

Status UseAssignOrReturn(int x, int* out) {
  GDB_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(7, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(UseAssignOrReturn(-7, &out).ok());
}

TEST(VarintTest, RoundTripBoundaries) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                     (1ULL << 32) - 1, 1ULL << 32, ~0ULL}) {
    std::string buf;
    PutVarint64(&buf, v);
    size_t pos = 0;
    auto decoded = GetVarint64(buf, &pos);
    ASSERT_TRUE(decoded.ok()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.resize(buf.size() - 1);
  size_t pos = 0;
  EXPECT_FALSE(GetVarint64(buf, &pos).ok());
}

TEST(VarintTest, ZigZagRoundTrip) {
  for (int64_t v : std::vector<int64_t>{0, 1, -1, 100, -100, INT64_MAX,
                                        INT64_MIN}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(VarintTest, DeltaListRoundTrip) {
  std::vector<uint64_t> ids = {3, 7, 7, 100, 5000, 5001, 1ULL << 40};
  std::string buf;
  EncodeDeltaList(ids, &buf);
  auto decoded = DecodeDeltaList(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, ids);
}

TEST(VarintTest, DeltaListEmpty) {
  std::string buf;
  EncodeDeltaList({}, &buf);
  auto decoded = DecodeDeltaList(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng base(7);
  Rng a = base.Fork(1);
  Rng b = base.Fork(2);
  // Streams should differ.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(ZipfTest, SkewedTowardsSmallRanks) {
  Rng rng(3);
  ZipfSampler zipf(1000, 1.2);
  std::map<uint64_t, int> counts;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) counts[zipf.Sample(rng)]++;
  // Rank 0 should dominate rank 100 by a wide margin.
  EXPECT_GT(counts[0], counts[100] * 5);
  // All samples in range.
  for (const auto& [k, v] : counts) EXPECT_LT(k, 1000u);
}

TEST(AliasSamplerTest, MatchesWeights) {
  Rng rng(4);
  AliasSampler sampler({1.0, 0.0, 3.0});
  int counts[3] = {0, 0, 0};
  const int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) counts[sampler.Sample(rng)]++;
  EXPECT_EQ(counts[1], 0);
  double ratio = static_cast<double>(counts[2]) / counts[0];
  EXPECT_NEAR(ratio, 3.0, 0.5);
}

TEST(JsonTest, ParsePrimitives) {
  auto v = Json::Parse("  true ");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_bool());

  v = Json::Parse("-42");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), -42);

  v = Json::Parse("3.5");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->double_value(), 3.5);

  v = Json::Parse("\"hi\\nthere\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "hi\nthere");

  v = Json::Parse("null");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(JsonTest, ParseNested) {
  auto v = Json::Parse(R"({"a":[1,2,{"b":null}],"c":{"d":false}})");
  ASSERT_TRUE(v.ok());
  const Json* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->array().size(), 3u);
  const Json* c = v->Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->Find("d")->bool_value());
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("12 34").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
}

TEST(JsonTest, DumpParseRoundTrip) {
  Json obj = Json::MakeObject();
  obj.Set("name", Json("graph \"db\""));
  obj.Set("count", Json(int64_t{12}));
  obj.Set("pi", Json(3.25));
  Json arr = Json::MakeArray();
  arr.Append(Json(true));
  arr.Append(Json(nullptr));
  obj.Set("flags", std::move(arr));

  auto round = Json::Parse(obj.Dump());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(*round, obj);

  auto pretty_round = Json::Parse(obj.Pretty());
  ASSERT_TRUE(pretty_round.ok());
  EXPECT_EQ(*pretty_round, obj);
}

TEST(JsonTest, UnicodeEscapes) {
  auto v = Json::Parse(R"("Aé")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "A\xc3\xa9");
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
}

TEST(CancelTest, NeverExpiresByDefault) {
  CancelToken t;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(t.Expired());
}

TEST(CancelTest, ManualCancel) {
  CancelToken t;
  CancelToken copy = t;
  t.Cancel();
  EXPECT_TRUE(copy.Expired());
}

TEST(CancelTest, DeadlineExpires) {
  CancelToken t = CancelToken::WithTimeout(std::chrono::milliseconds(1));
  Timer timer;
  bool expired = false;
  while (timer.ElapsedMillis() < 200.0) {
    if (t.Expired()) {
      expired = true;
      break;
    }
  }
  EXPECT_TRUE(expired);
}

TEST(CancelTest, ExpiredDeadlineSeenOnFirstProbe) {
  // An already-expired deadline must not hide behind the clock stride: a
  // short scan loop (< kClockStride probes) still has to time out.
  CancelToken t = CancelToken::WithTimeout(std::chrono::nanoseconds(-1));
  EXPECT_TRUE(t.Expired());
}

TEST(CancelTest, StrideSkipsClockBetweenChecks) {
  // With a far-future deadline, probes between stride boundaries must
  // return false without flipping the token.
  CancelToken t = CancelToken::WithTimeout(std::chrono::hours(2));
  for (uint32_t i = 0; i < 4 * CancelToken::kClockStride; ++i) {
    EXPECT_FALSE(t.Expired());
  }
}

TEST(CancelTest, SharedTokenProbesFromManyThreads) {
  // The probe counter is shared state: hammer it from several threads
  // (TSan-checked in CI) and confirm a cross-thread Cancel is observed.
  CancelToken t = CancelToken::WithTimeout(std::chrono::hours(2));
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (t.Expired()) break;
      }
    });
  }
  t.Cancel();
  for (auto& th : threads) th.join();
  stop.store(true);
  EXPECT_TRUE(t.Expired());
}

}  // namespace
}  // namespace gdbmicro
