// WAL recovery under injected storage faults.
//
// The centerpiece is the crash matrix (satellite of the PR-6 tentpole):
// log K committed batches, then simulate a crash at *every byte offset*
// of the tail — plain truncation, truncation with a torn/zeroed gash,
// and a single flipped bit — and assert that recovery always lands on
// exactly the longest valid committed prefix, reports the cut in a typed
// kCorruption tail, and never crashes or applies a partial batch.
//
// Also covered: group-commit durability windows, value separation round
// trips (including a corrupted value journal), and the FaultInjector
// end-to-end through Wal::LogBatch.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/storage/journal.h"
#include "src/storage/wal.h"

namespace gdbmicro {
namespace {

// One recognizable batch: a vertex, an edge hanging off it, and a
// property update — exercises pending refs and every payload shape.
WriteBatch MakeBatch(int i) {
  WriteBatch batch;
  PendingVertex v = batch.AddVertex(
      "node", {{"seq", PropertyValue(static_cast<int64_t>(i))}});
  batch.AddEdge(v, v, "self", {{"weight", PropertyValue(0.5 + i)}});
  batch.SetVertexProperty(v, "touched", PropertyValue(true));
  return batch;
}

// Logs `k` batches through a fresh durable-on-every-commit Wal and
// returns the log bytes plus the end offset of each commit (the valid
// prefix boundaries a recovery may land on).
struct LoggedTail {
  std::string bytes;
  std::vector<uint64_t> commit_ends;
};

LoggedTail LogBatches(int k) {
  WalOptions options;
  options.group_commits = 1;
  options.value_separation_threshold = 0;  // keep every byte in the log
  Wal wal(options);
  LoggedTail out;
  for (int i = 0; i < k; ++i) {
    auto seq = wal.LogBatch(MakeBatch(i));
    EXPECT_TRUE(seq.ok());
    out.commit_ends.push_back(wal.log().UsedBytes());
  }
  out.bytes = std::string(wal.log().Bytes());
  return out;
}

// Recovers a journal holding `bytes` and returns (stats, batches seen).
struct RecoveryOutcome {
  RecoveryStats stats;
  std::vector<Wal::RecoveredBatch> batches;
};

RecoveryOutcome RecoverBytes(std::string_view bytes) {
  Journal log(1 << 16, 1);
  if (!bytes.empty()) log.Append(bytes);
  Journal values(1 << 16, 1);
  RecoveryOutcome out;
  auto stats = Wal::Recover(log, values, [&](const Wal::RecoveredBatch& b) {
    out.batches.push_back(b);
    return Status::OK();
  });
  EXPECT_TRUE(stats.ok());
  out.stats = *stats;
  // Truncation invariant: the journal is cut to the valid prefix, and the
  // tail status is OK exactly when nothing was cut.
  EXPECT_EQ(log.UsedBytes(), out.stats.valid_bytes);
  EXPECT_EQ(out.stats.tail.ok(), out.stats.truncated_bytes == 0);
  if (!out.stats.tail.ok()) {
    EXPECT_EQ(out.stats.tail.code(), StatusCode::kCorruption);
  }
  return out;
}

// The longest commit boundary <= `cut`, and how many commits fit.
std::pair<uint64_t, size_t> LongestValidPrefix(
    const std::vector<uint64_t>& ends, uint64_t cut) {
  uint64_t prefix = 0;
  size_t commits = 0;
  for (size_t i = 0; i < ends.size(); ++i) {
    if (ends[i] <= cut) {
      prefix = ends[i];
      commits = i + 1;
    }
  }
  return {prefix, commits};
}

// Crash shape 1: plain truncation at every byte offset of the log.
// Recovery must yield exactly the commits whose boundary survived.
TEST(WalCrashMatrixTest, TruncationAtEveryByteOffset) {
  const int kBatches = 4;
  LoggedTail tail = LogBatches(kBatches);
  ASSERT_EQ(tail.commit_ends.size(), static_cast<size_t>(kBatches));
  ASSERT_EQ(tail.commit_ends.back(), tail.bytes.size());
  for (uint64_t cut = 0; cut <= tail.bytes.size(); ++cut) {
    RecoveryOutcome out = RecoverBytes(
        std::string_view(tail.bytes).substr(0, cut));
    auto [prefix, commits] = LongestValidPrefix(tail.commit_ends, cut);
    EXPECT_EQ(out.stats.valid_bytes, prefix) << "cut at " << cut;
    EXPECT_EQ(out.stats.commits_applied, commits) << "cut at " << cut;
    EXPECT_EQ(out.stats.truncated_bytes, cut - prefix) << "cut at " << cut;
    ASSERT_EQ(out.batches.size(), commits) << "cut at " << cut;
    // Batches replay whole and in order, never partially.
    for (size_t i = 0; i < commits; ++i) {
      EXPECT_EQ(out.batches[i].sequence, i + 1);
      EXPECT_EQ(out.batches[i].ops.size(), MakeBatch(0).size());
    }
  }
}

// Crash shape 2: one bit flipped at every byte offset of the *last*
// record group. The final batch must be invalidated (its checksum no
// longer matches) and recovery must keep the first K-1 commits.
TEST(WalCrashMatrixTest, BitFlipAtEveryTailByte) {
  const int kBatches = 3;
  LoggedTail tail = LogBatches(kBatches);
  uint64_t last_start = tail.commit_ends[kBatches - 2];
  for (uint64_t pos = last_start; pos < tail.bytes.size(); ++pos) {
    std::string mangled = tail.bytes;
    mangled[pos] = static_cast<char>(mangled[pos] ^ 0x10);
    RecoveryOutcome out = RecoverBytes(mangled);
    EXPECT_EQ(out.stats.commits_applied,
              static_cast<uint64_t>(kBatches - 1))
        << "flip at " << pos;
    EXPECT_EQ(out.stats.valid_bytes, last_start) << "flip at " << pos;
    EXPECT_GT(out.stats.truncated_bytes, 0u) << "flip at " << pos;
    EXPECT_EQ(out.stats.tail.code(), StatusCode::kCorruption)
        << "flip at " << pos;
  }
}

// Crash shape 3: torn write — a truncated tail with a zeroed gash before
// the cut (the shape kTornWrite produces). Sweep the gash position.
TEST(WalCrashMatrixTest, TornTailWithZeroedGash) {
  const int kBatches = 3;
  LoggedTail tail = LogBatches(kBatches);
  uint64_t last_start = tail.commit_ends[kBatches - 2];
  // Cut mid-way into the last group, zero a window before the cut.
  uint64_t cut = last_start + (tail.bytes.size() - last_start) / 2;
  for (uint64_t gash = last_start; gash + 2 <= cut; ++gash) {
    std::string torn = tail.bytes.substr(0, cut);
    torn[gash] = '\0';
    torn[gash + 1] = '\0';
    RecoveryOutcome out = RecoverBytes(torn);
    EXPECT_EQ(out.stats.commits_applied,
              static_cast<uint64_t>(kBatches - 1))
        << "gash at " << gash;
    EXPECT_EQ(out.stats.valid_bytes, last_start) << "gash at " << gash;
  }
}

// Garbage that never held a record recovers to the empty prefix.
TEST(WalCrashMatrixTest, PureGarbageRecoversToEmpty) {
  std::string garbage = "\xff\xfe\xfdnot a log at all\x01\x02";
  RecoveryOutcome out = RecoverBytes(garbage);
  EXPECT_EQ(out.stats.commits_applied, 0u);
  EXPECT_EQ(out.stats.valid_bytes, 0u);
  EXPECT_EQ(out.stats.truncated_bytes, garbage.size());
  EXPECT_EQ(out.batches.size(), 0u);
}

TEST(WalCrashMatrixTest, EmptyLogRecoversCleanly) {
  RecoveryOutcome out = RecoverBytes("");
  EXPECT_EQ(out.stats.commits_applied, 0u);
  EXPECT_TRUE(out.stats.tail.ok());
}

// --- FaultInjector end-to-end through the Wal ------------------------------

TEST(WalFaultTest, FailedAppendAbortsCommitAndKillsDevice) {
  WalOptions options;
  options.group_commits = 1;
  Wal wal(options);
  FaultInjector fault(FaultMode::kFailAppend, 2);
  wal.log().set_fault_injector(&fault);
  ASSERT_TRUE(wal.LogBatch(MakeBatch(0)).ok());
  auto second = wal.LogBatch(MakeBatch(1));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kIOError);
  EXPECT_TRUE(wal.log().dead());
  // A dead device rejects further commits outright.
  EXPECT_EQ(wal.LogBatch(MakeBatch(2)).status().code(), StatusCode::kIOError);
  // The surviving log replays exactly the first batch.
  RecoveryOutcome out = RecoverBytes(wal.log().Bytes());
  EXPECT_EQ(out.stats.commits_applied, 1u);
  EXPECT_TRUE(out.stats.tail.ok());
}

// Short and torn writes leave a mangled tail; recovery must land on the
// last durable commit. The mangled append itself reports success — the
// device persisted a prefix and died, which the caller only observes on
// the *next* write (exactly how a real disk loses a sector on power
// loss). The exact tail shape is seed-dependent, so the assertions are
// the invariants, not byte counts.
TEST(WalFaultTest, ShortAndTornWritesRecoverToLastDurableCommit) {
  for (FaultMode mode : {FaultMode::kShortWrite, FaultMode::kTornWrite}) {
    WalOptions options;
    options.group_commits = 1;
    Wal wal(options);
    FaultInjector fault(mode, 3, /*seed=*/99);
    wal.log().set_fault_injector(&fault);
    ASSERT_TRUE(wal.LogBatch(MakeBatch(0)).ok());
    ASSERT_TRUE(wal.LogBatch(MakeBatch(1)).ok());
    uint64_t durable_end = wal.log().UsedBytes();
    EXPECT_TRUE(wal.LogBatch(MakeBatch(2)).ok());  // silently mangled
    EXPECT_TRUE(wal.log().dead()) << FaultModeToString(mode);
    EXPECT_EQ(wal.LogBatch(MakeBatch(3)).status().code(),
              StatusCode::kIOError)
        << FaultModeToString(mode);
    RecoveryOutcome out = RecoverBytes(wal.log().Bytes());
    EXPECT_EQ(out.stats.commits_applied, 2u) << FaultModeToString(mode);
    EXPECT_EQ(out.stats.valid_bytes, durable_end) << FaultModeToString(mode);
  }
}

TEST(WalFaultTest, BitFlipIsSilentUntilRecovery) {
  WalOptions options;
  options.group_commits = 1;
  Wal wal(options);
  FaultInjector fault(FaultMode::kBitFlip, 2, /*seed=*/7);
  wal.log().set_fault_injector(&fault);
  uint64_t first_end = 0;
  ASSERT_TRUE(wal.LogBatch(MakeBatch(0)).ok());
  first_end = wal.log().UsedBytes();
  ASSERT_TRUE(wal.LogBatch(MakeBatch(1)).ok());  // "succeeds" — flipped bit
  ASSERT_TRUE(wal.LogBatch(MakeBatch(2)).ok());  // device still alive
  EXPECT_FALSE(wal.log().dead());
  // Recovery stops at the corrupt batch: prefix semantics, so the valid
  // third batch after the mangled second one is cut too.
  RecoveryOutcome out = RecoverBytes(wal.log().Bytes());
  EXPECT_EQ(out.stats.commits_applied, 1u);
  EXPECT_EQ(out.stats.valid_bytes, first_end);
  EXPECT_EQ(out.stats.tail.code(), StatusCode::kCorruption);
}

// --- Group commit ----------------------------------------------------------

TEST(WalGroupCommitTest, StagedCommitsAreLostUntilFlushed) {
  WalOptions options;
  options.group_commits = 3;
  Wal wal(options);
  ASSERT_TRUE(wal.LogBatch(MakeBatch(0)).ok());
  ASSERT_TRUE(wal.LogBatch(MakeBatch(1)).ok());
  EXPECT_EQ(wal.staged_commits(), 2u);
  EXPECT_EQ(wal.durable_commits(), 0u);
  EXPECT_EQ(wal.flushes(), 0u);
  // A crash now loses the whole staged window: the log journal is empty.
  RecoveryOutcome lost = RecoverBytes(wal.log().Bytes());
  EXPECT_EQ(lost.stats.commits_applied, 0u);
  // The third commit fills the group and flushes all three in one write.
  ASSERT_TRUE(wal.LogBatch(MakeBatch(2)).ok());
  EXPECT_EQ(wal.staged_commits(), 0u);
  EXPECT_EQ(wal.durable_commits(), 3u);
  EXPECT_EQ(wal.flushes(), 1u);
  RecoveryOutcome out = RecoverBytes(wal.log().Bytes());
  EXPECT_EQ(out.stats.commits_applied, 3u);
}

TEST(WalGroupCommitTest, SyncFlushesAPartialGroup) {
  WalOptions options;
  options.group_commits = 8;
  Wal wal(options);
  ASSERT_TRUE(wal.LogBatch(MakeBatch(0)).ok());
  EXPECT_EQ(wal.durable_commits(), 0u);
  ASSERT_TRUE(wal.Sync().ok());
  EXPECT_EQ(wal.durable_commits(), 1u);
  EXPECT_EQ(wal.staged_commits(), 0u);
  ASSERT_TRUE(wal.Sync().ok());  // idempotent on an empty group
  EXPECT_EQ(wal.flushes(), 1u);  // no second device write
}

TEST(WalGroupCommitTest, ByteTriggerFlushesEarly) {
  WalOptions options;
  options.group_commits = 1000;
  options.group_bytes = 1;  // any staged byte forces a flush
  Wal wal(options);
  ASSERT_TRUE(wal.LogBatch(MakeBatch(0)).ok());
  EXPECT_EQ(wal.durable_commits(), 1u);
  EXPECT_EQ(wal.staged_commits(), 0u);
}

// --- Value separation ------------------------------------------------------

TEST(WalValueSeparationTest, LargeValuesRoundTripThroughValueJournal) {
  WalOptions options;
  options.value_separation_threshold = 32;
  Wal wal(options);
  std::string big(200, 'v');
  WriteBatch batch;
  PendingVertex v = batch.AddVertex("node", {{"blob", PropertyValue(big)}});
  batch.SetVertexProperty(v, "small", PropertyValue(std::string("tiny")));
  ASSERT_TRUE(wal.LogBatch(batch).ok());
  EXPECT_EQ(wal.values_separated(), 1u);
  EXPECT_GE(wal.value_bytes(), big.size());

  std::vector<Wal::RecoveredBatch> batches;
  auto stats = wal.Recover([&](const Wal::RecoveredBatch& b) {
    batches.push_back(b);
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(batches.size(), 1u);
  const PropertyValue* blob = FindProperty(batches[0].ops[0].props, "blob");
  ASSERT_NE(blob, nullptr);
  EXPECT_EQ(blob->string_value(), big);  // resolved from the value journal
  const PropertyValue* small =
      FindProperty(batches[0].ops[1].props, "small");
  ASSERT_EQ(small, nullptr);  // SetVertexProperty carries `value`, not props
  EXPECT_EQ(batches[0].ops[1].value.string_value(), "tiny");  // inlined
}

TEST(WalValueSeparationTest, CorruptValueJournalInvalidatesTheBatch) {
  WalOptions options;
  options.value_separation_threshold = 16;
  Wal wal(options);
  WriteBatch small;
  small.AddVertex("node", {});
  ASSERT_TRUE(wal.LogBatch(small).ok());
  WriteBatch batch;
  batch.AddVertex("node",
                  {{"blob", PropertyValue(std::string(100, 'z'))}});
  ASSERT_TRUE(wal.LogBatch(batch).ok());

  // Flip a bit inside the separated value region, not the log.
  std::string mangled_values(wal.values().Bytes());
  mangled_values[50] = static_cast<char>(mangled_values[50] ^ 0x01);
  Journal log(1 << 16, 1);
  log.Append(wal.log().Bytes());
  Journal values(1 << 16, 1);
  values.Append(mangled_values);

  std::vector<Wal::RecoveredBatch> batches;
  auto stats = Wal::Recover(log, values, [&](const Wal::RecoveredBatch& b) {
    batches.push_back(b);
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok());
  // The first (value-free) batch survives; the batch whose value crc
  // fails is invalidated like any torn frame.
  EXPECT_EQ(stats->commits_applied, 1u);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(stats->tail.code(), StatusCode::kCorruption);
}

// --- Encoding fidelity -----------------------------------------------------

// Every op kind and every property value type survives a log round trip.
TEST(WalEncodingTest, AllOpKindsAndValueTypesRoundTrip) {
  WalOptions options;
  options.value_separation_threshold = 64;
  Wal wal(options);
  std::string separated(128, 's');
  WriteBatch batch;
  PendingVertex v = batch.AddVertex(
      "person", {{"null", PropertyValue()},
                 {"flag", PropertyValue(true)},
                 {"count", PropertyValue(static_cast<int64_t>(-42))},
                 {"score", PropertyValue(2.75)},
                 {"name", PropertyValue(std::string("inline"))},
                 {"bio", PropertyValue(separated)}});
  PendingEdge e = batch.AddEdge(v, VertexRef(7), "knows", {});
  batch.SetVertexProperty(VertexRef(9), "age",
                          PropertyValue(static_cast<int64_t>(33)));
  batch.SetEdgeProperty(e, "weight", PropertyValue(0.125));
  batch.RemoveVertexProperty(v, "flag");
  batch.RemoveEdgeProperty(EdgeRef(5), "weight");
  batch.RemoveEdge(e);
  batch.RemoveVertex(v);
  ASSERT_TRUE(wal.LogBatch(batch).ok());

  std::vector<Wal::RecoveredBatch> batches;
  ASSERT_TRUE(wal.Recover([&](const Wal::RecoveredBatch& b) {
                   batches.push_back(b);
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(batches.size(), 1u);
  const std::vector<WriteOp>& in = batch.ops();
  const std::vector<WriteOp>& out = batches[0].ops;
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].kind, in[i].kind) << "op " << i;
    EXPECT_EQ(out[i].name, in[i].name) << "op " << i;
    EXPECT_EQ(out[i].src.value, in[i].src.value) << "op " << i;
    EXPECT_EQ(out[i].src.pending, in[i].src.pending) << "op " << i;
    EXPECT_EQ(out[i].dst.value, in[i].dst.value) << "op " << i;
    EXPECT_EQ(out[i].edge.value, in[i].edge.value) << "op " << i;
    EXPECT_EQ(out[i].edge.pending, in[i].edge.pending) << "op " << i;
    EXPECT_EQ(out[i].value, in[i].value) << "op " << i;
    ASSERT_EQ(out[i].props.size(), in[i].props.size()) << "op " << i;
    for (size_t p = 0; p < in[i].props.size(); ++p) {
      EXPECT_EQ(out[i].props[p].first, in[i].props[p].first);
      EXPECT_EQ(out[i].props[p].second, in[i].props[p].second);
    }
  }
}

TEST(WalEncodingTest, EmptyBatchIsRejected) {
  Wal wal;
  WriteBatch empty;
  EXPECT_EQ(wal.LogBatch(empty).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WalEncodingTest, ForwardReferenceValidation) {
  WriteBatch bad;
  bad.SetVertexProperty(PendingVertex{0}, "p", PropertyValue(1));
  EXPECT_FALSE(bad.Validate().ok());  // refers to a vertex never added
  WriteBatch good;
  PendingVertex v = good.AddVertex("n", {});
  good.SetVertexProperty(v, "p", PropertyValue(1));
  EXPECT_TRUE(good.Validate().ok());
}

TEST(WalEncodingTest, SequenceNumbersAreMonotonic) {
  Wal wal;
  EXPECT_EQ(wal.LogBatch(MakeBatch(0)).value(), 1u);
  EXPECT_EQ(wal.LogBatch(MakeBatch(1)).value(), 2u);
  EXPECT_EQ(wal.LogBatch(MakeBatch(2)).value(), 3u);
}

}  // namespace
}  // namespace gdbmicro
