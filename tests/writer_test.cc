// EpochManager and GraphWriter unit tests: the versioned-snapshot write
// path layered over the engines in PR 6. The cross-engine visibility
// golden (readers pinned to an old epoch while a writer publishes) lives
// in concurrency_test.cc; these tests cover the mechanisms in isolation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/graph/engine.h"
#include "src/graph/epoch.h"
#include "src/graph/registry.h"
#include "src/graph/writer.h"
#include "src/storage/wal.h"

namespace gdbmicro {
namespace {

// --- EpochManager -----------------------------------------------------------

TEST(EpochManagerTest, PinUnpinTracksCounts) {
  EpochManager epochs;
  EXPECT_EQ(epochs.current(), 0u);
  uint64_t e = epochs.Pin();
  EXPECT_EQ(e, 0u);
  EXPECT_EQ(epochs.pinned(), 1u);
  uint64_t e2 = epochs.Pin();
  EXPECT_EQ(e2, 0u);
  EXPECT_EQ(epochs.pinned(), 2u);
  epochs.Unpin(e);
  epochs.Unpin(e2);
  EXPECT_EQ(epochs.pinned(), 0u);
}

TEST(EpochManagerTest, PublishAdvancesTheEpoch) {
  EpochManager epochs;
  epochs.BeginApply();
  EXPECT_EQ(epochs.EndApply(), 1u);
  EXPECT_EQ(epochs.current(), 1u);
  EXPECT_EQ(epochs.Pin(), 1u);  // new readers see the new epoch
  epochs.Unpin(1);
}

TEST(EpochManagerTest, RetireRunsImmediatelyWhenUnpinned) {
  EpochManager epochs;
  bool ran = false;
  epochs.Retire(0, [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(epochs.reclaimed(), 1u);
}

TEST(EpochManagerTest, RetireDefersUntilLastPinDrops) {
  EpochManager epochs;
  uint64_t e = epochs.Pin();
  std::atomic<bool> ran{false};
  epochs.Retire(e, [&] { ran = true; });
  EXPECT_FALSE(ran.load());  // a reader still pins the epoch
  epochs.Unpin(e);
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(epochs.reclaimed(), 1u);
}

TEST(EpochManagerTest, WriterWaitsForPinnedReadersToDrain) {
  EpochManager epochs;
  uint64_t e = epochs.Pin();
  std::atomic<bool> published{false};
  std::thread writer([&] {
    epochs.BeginApply();  // blocks: a reader pins epoch 0
    published.store(true);
    epochs.EndApply();
  });
  // The writer must report itself waiting, and must not get through.
  while (!epochs.writer_waiting()) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(published.load());
  epochs.Unpin(e);  // drain -> writer proceeds
  writer.join();
  EXPECT_TRUE(published.load());
  EXPECT_EQ(epochs.current(), 1u);
}

TEST(EpochManagerTest, NewPinsBlockWhileWriterApplies) {
  EpochManager epochs;
  epochs.BeginApply();  // no pins: enters immediately, gate closed
  std::atomic<bool> pinned{false};
  uint64_t seen = 0;
  std::thread reader([&] {
    seen = epochs.Pin();  // blocks until EndApply
    pinned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pinned.load());
  epochs.EndApply();
  reader.join();
  // The late reader lands on the *published* epoch, never the one being
  // replaced — this is what makes a session's snapshot immutable.
  EXPECT_TRUE(pinned.load());
  EXPECT_EQ(seen, 1u);
  epochs.Unpin(seen);
}

// --- GraphWriter ------------------------------------------------------------

class WriterTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    EngineOptions options;
    auto engine = OpenEngine(GetParam(), options);
    ASSERT_TRUE(engine.ok()) << engine.status();
    engine_ = std::move(engine).value();
  }

  std::unique_ptr<GraphEngine> engine_;
  CancelToken never_;
};

TEST_P(WriterTest, CommitBindsPendingRefsAndPublishes) {
  GraphWriter writer(engine_.get());
  WriteBatch batch;
  PendingVertex a = batch.AddVertex("person", {{"name", PropertyValue("a")}});
  PendingVertex b = batch.AddVertex("person", {{"name", PropertyValue("b")}});
  batch.AddEdge(a, b, "knows", {});
  batch.SetVertexProperty(b, "age", PropertyValue(30));
  auto receipt = writer.Commit(batch);
  ASSERT_TRUE(receipt.ok()) << receipt.status();
  ASSERT_EQ(receipt->vertex_ids.size(), 2u);
  ASSERT_EQ(receipt->edge_ids.size(), 1u);
  EXPECT_EQ(receipt->sequence, 1u);
  EXPECT_EQ(receipt->epoch, engine_->epochs().current());

  auto session = engine_->CreateSession();
  auto vertex = engine_->GetVertex(*session, receipt->vertex_ids[1]);
  ASSERT_TRUE(vertex.ok());
  const PropertyValue* age = FindProperty(vertex->properties, "age");
  ASSERT_NE(age, nullptr);
  EXPECT_EQ(age->int_value(), 30);
  auto edge = engine_->GetEdge(*session, receipt->edge_ids[0]);
  ASSERT_TRUE(edge.ok());
  EXPECT_EQ(edge->src, receipt->vertex_ids[0]);
  EXPECT_EQ(edge->dst, receipt->vertex_ids[1]);
}

TEST_P(WriterTest, EachCommitPublishesOneEpoch) {
  GraphWriter writer(engine_.get());
  for (int i = 0; i < 3; ++i) {
    WriteBatch batch;
    batch.AddVertex("node", {});
    ASSERT_TRUE(writer.Commit(batch).ok());
  }
  EXPECT_EQ(engine_->epochs().current(), 3u);
  EXPECT_EQ(writer.commits(), 3u);
  EXPECT_EQ(writer.wal().durable_commits(), 3u);  // group_commits = 1
}

TEST_P(WriterTest, RemovesAreIdempotent) {
  GraphWriter writer(engine_.get());
  WriteBatch create;
  create.AddVertex("node", {});
  auto receipt = writer.Commit(create);
  ASSERT_TRUE(receipt.ok());
  VertexId id = receipt->vertex_ids[0];
  WriteBatch remove;
  remove.RemoveVertex(VertexRef(id));
  ASSERT_TRUE(writer.Commit(remove).ok());
  // Removing an already-removed vertex is OK (NotFound tolerated) — the
  // property that makes WAL replay after a crash safe to re-run.
  WriteBatch again;
  again.RemoveVertex(VertexRef(id));
  EXPECT_TRUE(writer.Commit(again).ok());
}

// Replay the WAL a live writer produced into a fresh engine instance and
// compare: recovery must reconstruct the same graph.
TEST_P(WriterTest, ReplayReconstructsTheGraph) {
  GraphWriter writer(engine_.get());
  std::vector<VertexId> vertices;
  for (int i = 0; i < 4; ++i) {
    WriteBatch batch;
    PendingVertex v = batch.AddVertex(
        "node", {{"i", PropertyValue(static_cast<int64_t>(i))}});
    if (!vertices.empty()) {
      batch.AddEdge(v, VertexRef(vertices.back()), "next", {});
    }
    auto receipt = writer.Commit(batch);
    ASSERT_TRUE(receipt.ok());
    vertices.push_back(receipt->vertex_ids[0]);
  }
  WriteBatch mutate;
  mutate.SetVertexProperty(VertexRef(vertices[1]), "touched",
                           PropertyValue(true));
  mutate.RemoveVertex(VertexRef(vertices[3]));
  ASSERT_TRUE(writer.Commit(mutate).ok());

  EngineOptions options;
  auto fresh = OpenEngine(GetParam(), options);
  ASSERT_TRUE(fresh.ok());
  auto stats = GraphWriter::Replay(writer.wal().log(), writer.wal().values(),
                                   **fresh);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->commits_applied, 5u);
  EXPECT_TRUE(stats->tail.ok());

  auto live = engine_->CreateSession();
  auto replayed = (*fresh)->CreateSession();
  auto live_count = engine_->CountVertices(*live, never_);
  auto replayed_count = (*fresh)->CountVertices(*replayed, never_);
  ASSERT_TRUE(live_count.ok());
  ASSERT_TRUE(replayed_count.ok());
  EXPECT_EQ(*replayed_count, *live_count);
  auto live_edges = engine_->CountEdges(*live, never_);
  auto replayed_edges = (*fresh)->CountEdges(*replayed, never_);
  ASSERT_TRUE(live_edges.ok());
  ASSERT_TRUE(replayed_edges.ok());
  EXPECT_EQ(*replayed_edges, *live_edges);
  auto touched = (*fresh)->GetVertex(*replayed, vertices[1]);
  ASSERT_TRUE(touched.ok());
  const PropertyValue* flag = FindProperty(touched->properties, "touched");
  ASSERT_NE(flag, nullptr);
  EXPECT_TRUE(flag->bool_value());
  EXPECT_FALSE((*fresh)->GetVertex(*replayed, vertices[3]).ok());
}

TEST_P(WriterTest, DeadDeviceAbortsCommitWithStoreIntact) {
  GraphWriter writer(engine_.get());
  WriteBatch first;
  first.AddVertex("node", {});
  ASSERT_TRUE(writer.Commit(first).ok());
  uint64_t epoch_before = engine_->epochs().current();

  // The injector numbers the appends *it* sees; installed after the
  // first commit, the very next flush is append #1.
  FaultInjector fault(FaultMode::kFailAppend, 1);
  writer.wal().log().set_fault_injector(&fault);
  WriteBatch second;
  second.AddVertex("node", {});
  auto receipt = writer.Commit(second);
  ASSERT_FALSE(receipt.ok());
  EXPECT_EQ(receipt.status().code(), StatusCode::kIOError);
  // The failed commit never touched the store: no epoch published, the
  // vertex count is unchanged.
  EXPECT_EQ(engine_->epochs().current(), epoch_before);
  auto session = engine_->CreateSession();
  auto count = engine_->CountVertices(*session, never_);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  writer.wal().log().set_fault_injector(nullptr);
}

TEST_P(WriterTest, ApplyWriteBatchDirectPathMatchesWriterSemantics) {
  WriteBatch batch;
  PendingVertex v = batch.AddVertex("node", {});
  batch.SetVertexProperty(v, "p", PropertyValue(1));
  std::vector<VertexId> ids;
  ASSERT_TRUE(ApplyWriteBatch(*engine_, batch, &ids, nullptr).ok());
  ASSERT_EQ(ids.size(), 1u);
  auto session = engine_->CreateSession();
  auto vertex = engine_->GetVertex(*session, ids[0]);
  ASSERT_TRUE(vertex.ok());
  EXPECT_NE(FindProperty(vertex->properties, "p"), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, WriterTest,
    ::testing::Values("arango", "blaze", "neo19", "neo30", "orient",
                      "sparksee", "sqlg", "titan05", "titan10"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace gdbmicro
